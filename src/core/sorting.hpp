// String-ordering engines.
//
// Advanced sorting (paper Sec. III-B): all strings of a segment are sorted
// jointly over both order and per-string target choice by mapping to GTSP
// (cluster = string, vertices = (string, target)) and solving with the
// genetic algorithm.
//
// Baseline sorting ([9], used for the JW / BK / GT columns of Table I):
// every string of one excitation term shares a single target; the
// intra-term order is solved exactly per target (Held-Karp over <= 8
// strings, the "exhaustive search" of the baseline); inter-term ordering is
// doubly greedy -- group terms by best target, order within groups by
// nearest-neighbor savings.
#pragma once

#include <algorithm>
#include <limits>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/rotation_blocks.hpp"
#include "opt/gtsp.hpp"
#include "synth/cost_model.hpp"

namespace femto::core {

/// GTSP-based joint sort (order + targets). Returns the blocks in
/// implementation order with targets assigned. With a non-default
/// HardwareTarget the GTSP edge weights become the *device* savings
/// (synth/cost_model.hpp); on connectivity-constrained targets each edge
/// additionally carries the successor vertex's target-choice bonus (its
/// cluster-minimal routing-aware string cost minus the vertex's own), so the
/// solver is steered toward cheap target placements as well as savings. Both
/// extras are exactly zero for all_to_all_cnot / hw == nullptr, keeping the
/// historical behavior bit-identical.
[[nodiscard]] inline std::vector<synth::RotationBlock> sort_advanced(
    const std::vector<synth::RotationBlock>& blocks, Rng& rng,
    const opt::GtspOptions& options = {},
    const synth::HardwareTarget* hw = nullptr) {
  if (blocks.size() <= 1) return blocks;
  // Vertex table: (block index, target).
  struct Vertex {
    std::size_t block;
    std::size_t target;
    double bonus;  // cluster-min string cost - this vertex's string cost
  };
  std::vector<Vertex> vertices;
  const bool device = hw != nullptr && !hw->is_all_to_all_cnot();
  const bool constrained = device && hw->coupling.constrained();
  opt::GtspInstance inst;
  for (std::size_t k = 0; k < blocks.size(); ++k) {
    std::vector<int> cluster;
    const std::size_t first = vertices.size();
    for (std::size_t t : valid_targets(blocks[k])) {
      cluster.push_back(static_cast<int>(vertices.size()));
      vertices.push_back({k, t, 0.0});
    }
    FEMTO_EXPECTS(!cluster.empty());
    if (constrained) {
      int min_cost = std::numeric_limits<int>::max();
      for (std::size_t v = first; v < vertices.size(); ++v)
        min_cost = std::min(
            min_cost, synth::string_cost(blocks[k].string,
                                         vertices[v].target, *hw));
      for (std::size_t v = first; v < vertices.size(); ++v)
        vertices[v].bonus = static_cast<double>(
            min_cost - synth::string_cost(blocks[k].string,
                                          vertices[v].target, *hw));
    }
    inst.clusters.push_back(std::move(cluster));
  }
  // Memoized interface savings. Identical letter strings get weight 0 (the
  // paper inserts no edge between equal strings; adjacency is allowed but
  // yields no credit).
  auto cache = std::make_shared<std::unordered_map<std::uint64_t, double>>();
  const auto& blocks_ref = blocks;
  const auto& verts_ref = vertices;
  inst.weight = [cache, &blocks_ref, &verts_ref, device, hw](int a, int b) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(a) << 32) | static_cast<std::uint32_t>(b);
    const auto it = cache->find(key);
    if (it != cache->end()) return it->second;
    const Vertex& va = verts_ref[static_cast<std::size_t>(a)];
    const Vertex& vb = verts_ref[static_cast<std::size_t>(b)];
    double w = 0.0;
    if (!blocks_ref[va.block].string.same_letters(blocks_ref[vb.block].string))
      w = device ? synth::interface_saving(blocks_ref[va.block].string,
                                           va.target,
                                           blocks_ref[vb.block].string,
                                           vb.target, *hw)
                 : synth::interface_saving(blocks_ref[va.block].string,
                                           va.target,
                                           blocks_ref[vb.block].string,
                                           vb.target);
    w += vb.bonus;
    cache->emplace(key, w);
    return w;
  };
  const opt::GtspSolution sol = opt::solve_gtsp_ga(inst, rng, options);
  std::vector<synth::RotationBlock> out;
  out.reserve(blocks.size());
  for (std::size_t slot = 0; slot < sol.cluster_order.size(); ++slot) {
    const Vertex& v = vertices[static_cast<std::size_t>(sol.vertex_choice[slot])];
    synth::RotationBlock b = blocks[v.block];
    b.target = v.target;
    out.push_back(std::move(b));
  }
  return out;
}

namespace detail {

/// Exact best order of one term's blocks for a fixed shared target
/// (Held-Karp over <= ~12 blocks). Returns ordered indices and the total
/// savings along the path.
struct IntraResult {
  std::vector<std::size_t> order;
  int savings = 0;
};

[[nodiscard]] inline IntraResult held_karp_order(
    const std::vector<synth::RotationBlock>& blocks, std::size_t target,
    const synth::HardwareTarget* hw = nullptr) {
  const std::size_t m = blocks.size();
  FEMTO_EXPECTS(m >= 1 && m <= 16);
  // Pairwise savings with the shared target.
  std::vector<std::vector<int>> w(m, std::vector<int>(m, 0));
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < m; ++j)
      if (i != j &&
          !blocks[i].string.same_letters(blocks[j].string))
        w[i][j] = hw != nullptr
                      ? synth::interface_saving(blocks[i].string, target,
                                                blocks[j].string, target, *hw)
                      : synth::interface_saving(blocks[i].string, target,
                                                blocks[j].string, target);
  const std::size_t full = std::size_t{1} << m;
  std::vector<std::vector<int>> dp(full, std::vector<int>(m, -1));
  std::vector<std::vector<int>> parent(full, std::vector<int>(m, -1));
  for (std::size_t k = 0; k < m; ++k) dp[std::size_t{1} << k][k] = 0;
  for (std::size_t mask = 1; mask < full; ++mask) {
    for (std::size_t last = 0; last < m; ++last) {
      if (dp[mask][last] < 0 || !(mask & (std::size_t{1} << last))) continue;
      for (std::size_t next = 0; next < m; ++next) {
        if (mask & (std::size_t{1} << next)) continue;
        const std::size_t nmask = mask | (std::size_t{1} << next);
        const int cand = dp[mask][last] + w[last][next];
        if (cand > dp[nmask][next]) {
          dp[nmask][next] = cand;
          parent[nmask][next] = static_cast<int>(last);
        }
      }
    }
  }
  IntraResult res;
  std::size_t best_last = 0;
  int best = -1;
  for (std::size_t last = 0; last < m; ++last)
    if (dp[full - 1][last] > best) {
      best = dp[full - 1][last];
      best_last = last;
    }
  res.savings = best;
  res.order.resize(m);
  std::size_t mask = full - 1;
  std::size_t cur = best_last;
  for (std::size_t pos = m; pos-- > 0;) {
    res.order[pos] = cur;
    const int par = parent[mask][cur];
    mask ^= std::size_t{1} << cur;
    if (par < 0) break;
    cur = static_cast<std::size_t>(par);
  }
  return res;
}

/// Targets common to every block of a term (shared-target candidates).
[[nodiscard]] inline std::vector<std::size_t> common_targets(
    const std::vector<synth::RotationBlock>& blocks) {
  std::vector<std::size_t> out;
  if (blocks.empty()) return out;
  for (std::size_t t : valid_targets(blocks[0])) {
    bool ok = true;
    for (const auto& b : blocks)
      if (b.string.letter(t) == pauli::Letter::I) ok = false;
    if (ok) out.push_back(t);
  }
  return out;
}

}  // namespace detail

/// Baseline sort: per-term shared target + exact intra-term order, then
/// doubly-greedy inter-term ordering (group by target, nearest-neighbor
/// within and across groups). With a non-default HardwareTarget, savings are
/// the device savings and the shared-target choice additionally weighs the
/// routing-aware string costs (zero delta on unconstrained targets).
[[nodiscard]] inline std::vector<synth::RotationBlock> sort_baseline(
    const std::vector<std::vector<synth::RotationBlock>>& per_term,
    const synth::HardwareTarget* hw = nullptr) {
  struct TermPlan {
    std::vector<synth::RotationBlock> ordered;  // with targets assigned
    std::size_t target = 0;
  };
  const synth::HardwareTarget* device =
      hw != nullptr && !hw->is_all_to_all_cnot() ? hw : nullptr;
  std::vector<TermPlan> plans;
  for (const auto& term_blocks : per_term) {
    if (term_blocks.empty()) continue;
    TermPlan best;
    int best_savings = std::numeric_limits<int>::min();
    std::vector<std::size_t> candidates = detail::common_targets(term_blocks);
    if (candidates.empty()) candidates = valid_targets(term_blocks[0]);
    for (std::size_t t : candidates) {
      // Blocks lacking support on t keep their own first support qubit.
      std::vector<synth::RotationBlock> with_target = term_blocks;
      for (auto& b : with_target)
        if (b.string.letter(t) != pauli::Letter::I) b.target = t;
      const detail::IntraResult res =
          detail::held_karp_order(with_target, t, device);
      int savings = res.savings;
      if (device != nullptr && device->coupling.constrained())
        for (const auto& b : with_target)
          savings -= synth::string_cost(b.string, b.target, *device);
      if (savings > best_savings) {
        best_savings = savings;
        best.target = t;
        best.ordered.clear();
        for (std::size_t idx : res.order)
          best.ordered.push_back(with_target[idx]);
      }
    }
    plans.push_back(std::move(best));
  }
  // Group by shared target (descending group size), nearest-neighbor order
  // within each group using the real boundary savings.
  std::vector<std::vector<TermPlan>> groups;
  for (auto& plan : plans) {
    bool placed = false;
    for (auto& g : groups)
      if (g.front().target == plan.target) {
        g.push_back(std::move(plan));
        placed = true;
        break;
      }
    if (!placed) groups.push_back({std::move(plan)});
  }
  std::sort(groups.begin(), groups.end(),
            [](const auto& a, const auto& b) { return a.size() > b.size(); });
  const auto boundary_saving = [device](const TermPlan& a, const TermPlan& b) {
    const synth::RotationBlock& last = a.ordered.back();
    const synth::RotationBlock& first = b.ordered.front();
    if (last.string.same_letters(first.string)) return 0;
    return device != nullptr
               ? synth::interface_saving(last.string, last.target,
                                         first.string, first.target, *device)
               : synth::interface_saving(last.string, last.target,
                                         first.string, first.target);
  };
  std::vector<synth::RotationBlock> out;
  for (auto& group : groups) {
    // Greedy chain within the group.
    std::vector<bool> used(group.size(), false);
    std::size_t cur = 0;
    used[0] = true;
    std::vector<std::size_t> order{0};
    for (std::size_t step = 1; step < group.size(); ++step) {
      int best = -1;
      std::size_t best_next = 0;
      for (std::size_t cand = 0; cand < group.size(); ++cand) {
        if (used[cand]) continue;
        const int s = boundary_saving(group[cur], group[cand]);
        if (s > best) {
          best = s;
          best_next = cand;
        }
      }
      used[best_next] = true;
      order.push_back(best_next);
      cur = best_next;
    }
    for (std::size_t idx : order)
      for (const auto& b : group[idx].ordered) out.push_back(b);
  }
  return out;
}

/// Fast per-term cost used inside annealing loops: nearest-neighbor chain
/// with per-block target freedom, no inter-term credit. With a non-default
/// HardwareTarget this is the device-cost analogue (for constrained targets,
/// string costs use the cheapest routing-aware target per block).
[[nodiscard]] inline int fast_term_cost(
    const std::vector<synth::RotationBlock>& blocks,
    const synth::HardwareTarget* hw = nullptr) {
  if (blocks.empty()) return 0;
  const synth::HardwareTarget* device =
      hw != nullptr && !hw->is_all_to_all_cnot() ? hw : nullptr;
  int total = 0;
  for (const auto& b : blocks) {
    if (device == nullptr) {
      total += synth::string_cost(b.string);
    } else if (!device->coupling.constrained()) {
      total += synth::string_cost(b.string, b.target, *device);
    } else {
      int cheapest = std::numeric_limits<int>::max();
      for (std::size_t t : valid_targets(b))
        cheapest = std::min(cheapest,
                            synth::string_cost(b.string, t, *device));
      total += cheapest;
    }
  }
  // Greedy chain: start at block 0 with its first target.
  std::vector<bool> used(blocks.size(), false);
  used[0] = true;
  std::size_t cur = 0;
  for (std::size_t step = 1; step < blocks.size(); ++step) {
    int best = -1;
    std::size_t best_next = 0;
    for (std::size_t cand = 0; cand < blocks.size(); ++cand) {
      if (used[cand] || blocks[cand].string.same_letters(blocks[cur].string))
        continue;
      for (std::size_t t1 : valid_targets(blocks[cur])) {
        if (blocks[cand].string.letter(t1) == pauli::Letter::I) continue;
        const int s =
            device != nullptr
                ? synth::interface_saving(blocks[cur].string, t1,
                                          blocks[cand].string, t1, *device)
                : synth::interface_saving(blocks[cur].string, t1,
                                          blocks[cand].string, t1);
        if (s > best) {
          best = s;
          best_next = cand;
        }
      }
    }
    if (best < 0) {
      // No shareable target; take any unused block with zero saving.
      for (std::size_t cand = 0; cand < blocks.size(); ++cand)
        if (!used[cand]) {
          best_next = cand;
          best = 0;
          break;
        }
    }
    total -= std::max(best, 0);
    used[best_next] = true;
    cur = best_next;
  }
  return total;
}

}  // namespace femto::core
