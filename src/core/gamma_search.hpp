// Advanced fermion-to-qubit transformation search (paper Sec. III-C) and
// the baseline searches it supersedes.
//
//  - Block discovery: connected components of the index-pair graph formed by
//    creation pairs and annihilation pairs of the fermionic double
//    excitations (paper Appendix C), minus any excluded indices (qubits that
//    must stay untouched, e.g. compressed-pair members).
//  - Advanced search: simulated annealing over block-diagonal Gamma in
//    GL(N,2); moves are elementary row additions inside one block (closed in
//    GL). The SA objective is a fast per-term cost; the final pipeline
//    re-sorts with the full GTSP GA.
//  - Baseline searches ([9]): binary PSO over strictly-upper-triangular
//    bits, and greedy transposition hill-climbing for fermionic level
//    labeling.
#pragma once

#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "fermion/excitation.hpp"
#include "gf2/matrix.hpp"
#include "graph/digraph.hpp"
#include "opt/binary_pso.hpp"
#include "opt/simulated_annealing.hpp"

namespace femto::core {

/// Gamma blocks from the excitation-term topology. `excluded` indices never
/// appear in any block.
[[nodiscard]] inline std::vector<std::vector<std::size_t>> discover_blocks(
    std::size_t n, const std::vector<fermion::ExcitationTerm>& terms,
    const std::vector<std::size_t>& excluded) {
  std::vector<bool> banned(n, false);
  for (std::size_t e : excluded) banned[e] = true;
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  for (const auto& t : terms) {
    if (!t.is_double()) continue;
    if (!banned[t.p] && !banned[t.q]) pairs.push_back({t.p, t.q});
    if (!banned[t.r] && !banned[t.s]) pairs.push_back({t.r, t.s});
  }
  return graph::pair_components(n, pairs);
}

/// State of the block-diagonal Gamma search.
struct GammaState {
  gf2::Matrix gamma;                              // full n x n
  std::vector<std::vector<std::size_t>> blocks;   // index sets
};

/// Elementary in-block row addition: gamma <- E gamma (stays invertible).
[[nodiscard]] inline GammaState propose_gamma_move(const GammaState& state,
                                                   Rng& rng) {
  GammaState next = state;
  if (state.blocks.empty()) return next;
  const auto& block = state.blocks[rng.index(state.blocks.size())];
  if (block.size() < 2) return next;
  const std::size_t src = block[rng.index(block.size())];
  std::size_t dst = block[rng.index(block.size())];
  while (dst == src) dst = block[rng.index(block.size())];
  next.gamma.add_row(src, dst);
  return next;
}

/// Simulated-annealing search over block-diagonal Gamma. `cost` evaluates a
/// candidate matrix (typically the fast segment cost).
[[nodiscard]] inline GammaState anneal_gamma(
    std::size_t n, const std::vector<std::vector<std::size_t>>& blocks,
    const std::function<double(const gf2::Matrix&)>& cost, Rng& rng,
    const opt::SaOptions& options = {}) {
  GammaState init{gf2::Matrix::identity(n), blocks};
  const auto energy = [&cost](const GammaState& s) { return cost(s.gamma); };
  const auto res = opt::simulated_annealing<GammaState>(
      std::move(init), energy, propose_gamma_move, rng, options);
  return res.best;
}

/// Baseline [9]: binary PSO over strictly-upper-triangular entries restricted
/// to `allowed` indices (unit diagonal guarantees invertibility).
[[nodiscard]] inline gf2::Matrix pso_upper_triangular(
    std::size_t n, const std::vector<std::size_t>& allowed,
    const std::function<double(const gf2::Matrix&)>& cost, Rng& rng,
    const opt::PsoOptions& options = {}) {
  const std::size_t m = allowed.size();
  const std::size_t dim = m * (m - 1) / 2;
  const auto decode = [&](const std::vector<bool>& bits) {
    gf2::Matrix gamma = gf2::Matrix::identity(n);
    std::size_t k = 0;
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t j = i + 1; j < m; ++j)
        gamma.set(allowed[i], allowed[j], bits[k++]);
    return gamma;
  };
  if (dim == 0) return gf2::Matrix::identity(n);
  const auto energy = [&](const std::vector<bool>& bits) {
    return cost(decode(bits));
  };
  const opt::PsoResult res = opt::binary_pso(dim, energy, rng, options);
  return decode(res.best);
}

/// Baseline [9] fermionic level labeling: greedy transposition hill climbing
/// over mode permutations restricted to `allowed` indices. Returns the
/// permutation matrix (a member of GL(N,2), composable with any Gamma).
[[nodiscard]] inline gf2::Matrix greedy_level_labeling(
    std::size_t n, const std::vector<std::size_t>& allowed,
    const std::function<double(const gf2::Matrix&)>& cost, int max_rounds = 4) {
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  double best = cost(gf2::Matrix::permutation(perm));
  for (int round = 0; round < max_rounds; ++round) {
    bool improved = false;
    for (std::size_t a = 0; a < allowed.size(); ++a) {
      for (std::size_t b = a + 1; b < allowed.size(); ++b) {
        std::swap(perm[allowed[a]], perm[allowed[b]]);
        const double cand = cost(gf2::Matrix::permutation(perm));
        if (cand < best - 1e-12) {
          best = cand;
          improved = true;
        } else {
          std::swap(perm[allowed[a]], perm[allowed[b]]);  // revert
        }
      }
    }
    if (!improved) break;
  }
  return gf2::Matrix::permutation(perm);
}

/// Embedded Bravyi-Kitaev (Fenwick) matrix over a subset of indices, identity
/// elsewhere. Used to combine the BK column with pair compression: BK is
/// built over the uncompressed modes only.
[[nodiscard]] inline gf2::Matrix embedded_bravyi_kitaev(
    std::size_t n, const std::vector<std::size_t>& allowed) {
  gf2::Matrix a = gf2::Matrix::identity(n);
  const std::size_t m = allowed.size();
  for (std::size_t i1 = 1; i1 <= m; ++i1) {
    const std::size_t low = i1 & (~i1 + 1);
    a.set(allowed[i1 - 1], allowed[i1 - 1], false);
    for (std::size_t k1 = i1 - low + 1; k1 <= i1; ++k1)
      a.set(allowed[i1 - 1], allowed[k1 - 1], true);
  }
  FEMTO_ENSURES(a.invertible());
  return a;
}

}  // namespace femto::core
