// Advanced fermion-to-qubit transformation search (paper Sec. III-C) and
// the baseline searches it supersedes.
//
//  - Block discovery: connected components of the index-pair graph formed by
//    creation pairs and annihilation pairs of the fermionic double
//    excitations (paper Appendix C), minus any excluded indices (qubits that
//    must stay untouched, e.g. compressed-pair members).
//  - Advanced search: simulated annealing over block-diagonal Gamma in
//    GL(N,2); moves are elementary row additions inside one block (closed in
//    GL). The SA objective is a fast per-term cost; the final pipeline
//    re-sorts with the full GTSP GA.
//  - Baseline searches ([9]): binary PSO over strictly-upper-triangular
//    bits, and greedy transposition hill-climbing for fermionic level
//    labeling.
#pragma once

#include <cmath>
#include <functional>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "core/sorting.hpp"
#include "fermion/excitation.hpp"
#include "gf2/matrix.hpp"
#include "graph/digraph.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "opt/binary_pso.hpp"
#include "opt/simulated_annealing.hpp"

namespace femto::core {

/// Gamma blocks from the excitation-term topology. `excluded` indices never
/// appear in any block.
[[nodiscard]] inline std::vector<std::vector<std::size_t>> discover_blocks(
    std::size_t n, const std::vector<fermion::ExcitationTerm>& terms,
    const std::vector<std::size_t>& excluded) {
  std::vector<bool> banned(n, false);
  for (std::size_t e : excluded) banned[e] = true;
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  for (const auto& t : terms) {
    if (!t.is_double()) continue;
    if (!banned[t.p] && !banned[t.q]) pairs.push_back({t.p, t.q});
    if (!banned[t.r] && !banned[t.s]) pairs.push_back({t.r, t.s});
  }
  return graph::pair_components(n, pairs);
}

/// State of the block-diagonal Gamma search.
struct GammaState {
  gf2::Matrix gamma;                              // full n x n
  std::vector<std::vector<std::size_t>> blocks;   // index sets
};

/// Elementary in-block row addition: gamma <- E gamma (stays invertible).
[[nodiscard]] inline GammaState propose_gamma_move(const GammaState& state,
                                                   Rng& rng) {
  GammaState next = state;
  if (state.blocks.empty()) return next;
  const auto& block = state.blocks[rng.index(state.blocks.size())];
  if (block.size() < 2) return next;
  const std::size_t src = block[rng.index(block.size())];
  std::size_t dst = block[rng.index(block.size())];
  while (dst == src) dst = block[rng.index(block.size())];
  next.gamma.add_row(src, dst);
  return next;
}

/// Simulated-annealing search over block-diagonal Gamma. `cost` evaluates a
/// candidate matrix (typically the fast segment cost).
[[nodiscard]] inline GammaState anneal_gamma(
    std::size_t n, const std::vector<std::vector<std::size_t>>& blocks,
    const std::function<double(const gf2::Matrix&)>& cost, Rng& rng,
    const opt::SaOptions& options = {}) {
  GammaState init{gf2::Matrix::identity(n), blocks};
  const auto energy = [&cost](const GammaState& s) { return cost(s.gamma); };
  const auto res = opt::simulated_annealing<GammaState>(
      std::move(init), energy, propose_gamma_move, rng, options);
  return res.best;
}

/// Fast cost of a fermionic segment under a candidate Gamma: conjugate the
/// symplectic components of every block (x -> Gamma x, z -> Gamma^-T z) and
/// sum the per-term greedy-chain costs. This is the Gamma-search objective
/// of the PSO / level-labeling baselines and the full-recompute reference
/// the incremental GammaObjective below is tested (and benched) against.
/// Returns 1e18 for singular candidates.
[[nodiscard]] inline double fermionic_fast_cost(
    const gf2::Matrix& gamma,
    const std::vector<std::vector<synth::RotationBlock>>& term_blocks,
    const synth::HardwareTarget* hw = nullptr,
    synth::StringCostCache* cost_cache = nullptr) {
  const auto inv = gamma.inverse();
  if (!inv.has_value()) return 1e18;
  const gf2::Matrix inv_t = inv->transpose();
  const std::size_t n = gamma.size();
  double total = 0;
  for (const auto& blocks : term_blocks) {
    std::vector<synth::RotationBlock> mapped = blocks;
    for (auto& b : mapped) {
      pauli::PauliString s(n);
      s.set_symplectic(gamma.apply(b.string.x()), inv_t.apply(b.string.z()));
      b.string = std::move(s);
      const std::size_t t = b.string.support().lowest_set();
      if (t >= n) return 1e18;  // string vanished: degenerate transform
      b.target = t;
    }
    total += fast_term_cost(mapped, hw, cost_cache);
  }
  return total;
}

/// Incrementally maintained Gamma-search objective. An SA move is one
/// elementary GF(2) row addition gamma <- E gamma with E = I + e_dst e_src^T
/// (and E^-1 = E), so everything the fast cost needs admits an O(1)-per-bit
/// delta update instead of gamma.inverse() + a full re-map of every string:
///
///   gamma           row dst ^= row src
///   (gamma^-1)^T    = E^T (old gamma^-1)^T: row src ^= row dst
///   mapped x        bit dst ^= bit src  (x' = E x)
///   mapped z        bit src ^= bit dst  (z' = E^T z)
///
/// Only terms owning a block with x[src] or z[dst] set can change cost; all
/// others keep their cached per-term value. apply_move / undo_move are exact
/// inverses (E is an involution and the undo journal restores the caches),
/// and energy() is bit-identical to fermionic_fast_cost(gamma(), ...) at
/// every point -- the same integer per-term costs in the same order.
class GammaObjective {
 public:
  /// Flattens the per-term block table. Call reset() before first use.
  GammaObjective(std::size_t n,
                 const std::vector<std::vector<synth::RotationBlock>>& term_blocks,
                 const synth::HardwareTarget* hw = nullptr,
                 synth::StringCostCache* cost_cache = nullptr)
      : n_(n),
        device_(hw != nullptr && !hw->is_all_to_all_cnot() ? hw : nullptr),
        cache_(cost_cache),
        gamma_(gf2::Matrix::identity(n)),
        inv_t_(gf2::Matrix::identity(n)) {
    std::size_t max_blocks = 0;
    for (const auto& blocks : term_blocks) {
      Term term;
      term.begin = blocks_.size();
      for (const auto& b : blocks)
        blocks_.push_back({b.string.x(), b.string.z(), b.string.x(),
                           b.string.z()});
      term.end = blocks_.size();
      terms_.push_back(term);
      max_blocks = std::max(max_blocks, term.end - term.begin);
    }
    table_.resize(max_blocks * max_blocks);
    used_.resize(max_blocks);
    if (device_ != nullptr)
      scratch_strings_.assign(max_blocks, pauli::PauliString(n));
  }

  /// Full recomputation from an arbitrary (invertible) Gamma; used at the
  /// start of a search and on SA reheats.
  void reset(const gf2::Matrix& gamma) {
    gamma_ = gamma;
    const auto inv = gamma.inverse();
    FEMTO_EXPECTS(inv.has_value());
    inv_t_ = inv->transpose();
    total_ = 0;
    for (std::size_t ti = 0; ti < terms_.size(); ++ti) {
      for (std::size_t k = terms_[ti].begin; k < terms_[ti].end; ++k) {
        blocks_[k].x = gamma_.apply(blocks_[k].base_x);
        blocks_[k].z = inv_t_.apply(blocks_[k].base_z);
      }
      terms_[ti].cost = recompute_term(ti);
      total_ += terms_[ti].cost;
    }
    dirty_.clear();
  }

  [[nodiscard]] double energy() const { return static_cast<double>(total_); }
  [[nodiscard]] const gf2::Matrix& gamma() const { return gamma_; }
  [[nodiscard]] const gf2::Matrix& inverse_transpose() const { return inv_t_; }

  /// Applies the elementary move gamma <- E gamma (row dst ^= row src).
  void apply_move(std::size_t src, std::size_t dst) {
    FEMTO_EXPECTS(src != dst);
    last_src_ = src;
    last_dst_ = dst;
    dirty_.clear();
    for (std::size_t ti = 0; ti < terms_.size(); ++ti) {
      bool dirty = false;
      for (std::size_t k = terms_[ti].begin; k < terms_[ti].end; ++k) {
        // Unchecked bit accessors: src/dst are block indices < n by
        // construction, and this loop dominates every SA candidate.
        Block& b = blocks_[k];
        const bool fx = b.x.get_u(src);
        const bool fz = b.z.get_u(dst);
        if (fx) b.x.flip_u(dst);
        if (fz) b.z.flip_u(src);
        dirty = dirty || fx || fz;
      }
      if (dirty) {
        dirty_.push_back({ti, terms_[ti].cost});
        const int c = recompute_term(ti);
        total_ += c - terms_[ti].cost;
        terms_[ti].cost = c;
      }
    }
    gamma_.add_row(src, dst);
    inv_t_.add_row(dst, src);
  }

  /// Exact inverse of the last apply_move (E is an involution; cached term
  /// costs are restored from the journal).
  void undo_move() {
    for (const Dirty& d : dirty_) {
      for (std::size_t k = terms_[d.term].begin; k < terms_[d.term].end; ++k) {
        Block& b = blocks_[k];
        const bool fx = b.x.get_u(last_src_);
        const bool fz = b.z.get_u(last_dst_);
        if (fx) b.x.flip_u(last_dst_);
        if (fz) b.z.flip_u(last_src_);
      }
      total_ += d.old_cost - terms_[d.term].cost;
      terms_[d.term].cost = d.old_cost;
    }
    gamma_.add_row(last_src_, last_dst_);
    inv_t_.add_row(last_dst_, last_src_);
    dirty_.clear();
  }

 private:
  struct Block {
    gf2::BitVec base_x, base_z;  // Jordan-Wigner (identity-Gamma) frame
    gf2::BitVec x, z;            // mapped: x = Gamma base_x, z = Gamma^-T base_z
  };
  struct Term {
    std::size_t begin = 0, end = 0;
    int cost = 0;
  };
  struct Dirty {
    std::size_t term = 0;
    int old_cost = 0;
  };

  [[nodiscard]] static std::size_t support_weight(const Block& b) {
    return gf2::wordops::or_popcount(b.x.word_data(), b.z.word_data(),
                                     b.x.word_count());
  }

  /// fast_term_cost of one term over the mapped symplectic pairs: per-block
  /// string costs plus the greedy chain on the pairwise savings table.
  /// Mirrors core::fast_term_cost exactly (same tables, same tie-breaks).
  [[nodiscard]] int recompute_term(std::size_t ti) {
    const Term& term = terms_[ti];
    const std::size_t m = term.end - term.begin;
    if (m == 0) return 0;
    const Block* blocks = blocks_.data() + term.begin;
    int total = 0;
    if (device_ == nullptr) {
      for (std::size_t k = 0; k < m; ++k) {
        const std::size_t w = support_weight(blocks[k]);
        total += w <= 1 ? 0 : 2 * (static_cast<int>(w) - 1);
      }
      if (m == 1) return total;
      for (std::size_t i = 0; i < m; ++i)
        for (std::size_t j = 0; j < m; ++j)
          table_[i * m + j] =
              (i == j || (blocks[i].x == blocks[j].x &&
                          blocks[i].z == blocks[j].z))
                  ? -1
                  : synth::best_shared_target_saving(blocks[i].x, blocks[i].z,
                                                     blocks[j].x, blocks[j].z);
    } else {
      for (std::size_t k = 0; k < m; ++k) {
        scratch_strings_[k].set_symplectic(blocks[k].x, blocks[k].z);
        const pauli::PauliString& s = scratch_strings_[k];
        if (!device_->coupling.constrained()) {
          const std::size_t t = s.support().lowest_set();
          total += cache_ != nullptr ? cache_->cost(s, t)
                                     : synth::string_cost(s, t, *device_);
        } else if (cache_ != nullptr) {
          total += cache_->min_cost(s);
        } else {
          int cheapest = std::numeric_limits<int>::max();
          for (std::size_t t = 0; t < n_; ++t)
            if (s.letter(t) != pauli::Letter::I)
              cheapest = std::min(cheapest, synth::string_cost(s, t, *device_));
          total += cheapest;
        }
      }
      if (m == 1) return total;
      for (std::size_t i = 0; i < m; ++i)
        for (std::size_t j = 0; j < m; ++j)
          table_[i * m + j] =
              (i == j || scratch_strings_[i].same_letters(scratch_strings_[j]))
                  ? -1
                  : detail::best_shared_device_saving(
                        scratch_strings_[i], scratch_strings_[j], *device_);
    }
    return total - detail::greedy_chain_savings(table_.data(), m, used_.data());
  }

  std::size_t n_ = 0;
  const synth::HardwareTarget* device_ = nullptr;
  synth::StringCostCache* cache_ = nullptr;
  gf2::Matrix gamma_, inv_t_;
  std::vector<Block> blocks_;
  std::vector<Term> terms_;
  std::vector<int> table_;
  std::vector<std::uint8_t> used_;
  std::vector<pauli::PauliString> scratch_strings_;
  std::vector<Dirty> dirty_;
  std::size_t last_src_ = 0, last_dst_ = 0;
  int total_ = 0;
};

/// Simulated-annealing search over block-diagonal Gamma on the incremental
/// objective. Replays the exact Metropolis loop of opt::simulated_annealing
/// with propose_gamma_move's draw order (block, src, dst with re-draws,
/// uniform only on uphill candidates), so the returned state is
/// bit-identical to anneal_gamma(n, blocks, fermionic_fast_cost, ...) --
/// only the per-candidate evaluation is O(delta) instead of O(full
/// segment).
[[nodiscard]] inline GammaState anneal_gamma_fast(
    std::size_t n, const std::vector<std::vector<std::size_t>>& blocks,
    GammaObjective& objective, Rng& rng, const opt::SaOptions& options = {}) {
  FEMTO_EXPECTS(options.steps > 0);
  FEMTO_EXPECTS(options.t_initial > 0 && options.t_final > 0);
  // Coarse solver observability: ONE span per SA solve (never per step) so
  // tracing cost stays negligible next to the Metropolis loop itself.
  obs::Span span("gamma_sa", "solver");
  span.arg("steps", options.steps);
  span.arg("blocks", blocks.size());
  static obs::Counter& solves = obs::registry().counter("solver.sa_solves");
  static obs::Counter& steps = obs::registry().counter("solver.sa_steps");
  solves.inc();
  steps.inc(static_cast<std::uint64_t>(options.steps));
  objective.reset(gf2::Matrix::identity(n));
  double current_energy = objective.energy();
  gf2::Matrix best_gamma = objective.gamma();
  double best_energy = current_energy;
  const double cool =
      std::pow(options.t_final / options.t_initial,
               1.0 / static_cast<double>(options.steps));
  double t = options.t_initial;
  for (int step = 0; step < options.steps; ++step, t *= cool) {
    // Mirror propose_gamma_move's draws exactly; a block of size < 2 is a
    // null proposal (same state, delta 0, always accepted).
    bool moved = false;
    std::size_t src = 0, dst = 0;
    if (!blocks.empty()) {
      const auto& block = blocks[rng.index(blocks.size())];
      if (block.size() >= 2) {
        src = block[rng.index(block.size())];
        dst = block[rng.index(block.size())];
        while (dst == src) dst = block[rng.index(block.size())];
        moved = true;
      }
    }
    double e = current_energy;
    if (moved) {
      objective.apply_move(src, dst);
      e = objective.energy();
    }
    const double delta = e - current_energy;
    if (delta <= 0 || rng.uniform() < std::exp(-delta / t)) {
      current_energy = e;
      if (e < best_energy) {
        best_energy = e;
        best_gamma = objective.gamma();
      }
    } else if (moved) {
      objective.undo_move();
    }
    if (options.reheat_interval > 0 && step > 0 &&
        step % options.reheat_interval == 0) {
      // Restore the best state (generic SA copies it; here a reset only
      // when the current state actually drifted).
      if (!(objective.gamma() == best_gamma)) objective.reset(best_gamma);
      current_energy = best_energy;
    }
  }
  return {std::move(best_gamma), blocks};
}

/// Convenience overload building the objective in place.
[[nodiscard]] inline GammaState anneal_gamma_fast(
    std::size_t n, const std::vector<std::vector<std::size_t>>& blocks,
    const std::vector<std::vector<synth::RotationBlock>>& term_blocks,
    const synth::HardwareTarget* hw, synth::StringCostCache* cost_cache,
    Rng& rng, const opt::SaOptions& options = {}) {
  GammaObjective objective(n, term_blocks, hw, cost_cache);
  return anneal_gamma_fast(n, blocks, objective, rng, options);
}

/// Baseline [9]: binary PSO over strictly-upper-triangular entries restricted
/// to `allowed` indices (unit diagonal guarantees invertibility).
[[nodiscard]] inline gf2::Matrix pso_upper_triangular(
    std::size_t n, const std::vector<std::size_t>& allowed,
    const std::function<double(const gf2::Matrix&)>& cost, Rng& rng,
    const opt::PsoOptions& options = {}) {
  const std::size_t m = allowed.size();
  const std::size_t dim = m * (m - 1) / 2;
  const auto decode = [&](const std::vector<bool>& bits) {
    gf2::Matrix gamma = gf2::Matrix::identity(n);
    std::size_t k = 0;
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t j = i + 1; j < m; ++j)
        gamma.set(allowed[i], allowed[j], bits[k++]);
    return gamma;
  };
  if (dim == 0) return gf2::Matrix::identity(n);
  const auto energy = [&](const std::vector<bool>& bits) {
    return cost(decode(bits));
  };
  const opt::PsoResult res = opt::binary_pso(dim, energy, rng, options);
  return decode(res.best);
}

/// Baseline [9] fermionic level labeling: greedy transposition hill climbing
/// over mode permutations restricted to `allowed` indices. Returns the
/// permutation matrix (a member of GL(N,2), composable with any Gamma).
[[nodiscard]] inline gf2::Matrix greedy_level_labeling(
    std::size_t n, const std::vector<std::size_t>& allowed,
    const std::function<double(const gf2::Matrix&)>& cost, int max_rounds = 4) {
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  double best = cost(gf2::Matrix::permutation(perm));
  for (int round = 0; round < max_rounds; ++round) {
    bool improved = false;
    for (std::size_t a = 0; a < allowed.size(); ++a) {
      for (std::size_t b = a + 1; b < allowed.size(); ++b) {
        std::swap(perm[allowed[a]], perm[allowed[b]]);
        const double cand = cost(gf2::Matrix::permutation(perm));
        if (cand < best - 1e-12) {
          best = cand;
          improved = true;
        } else {
          std::swap(perm[allowed[a]], perm[allowed[b]]);  // revert
        }
      }
    }
    if (!improved) break;
  }
  return gf2::Matrix::permutation(perm);
}

/// Embedded Bravyi-Kitaev (Fenwick) matrix over a subset of indices, identity
/// elsewhere. Used to combine the BK column with pair compression: BK is
/// built over the uncompressed modes only.
[[nodiscard]] inline gf2::Matrix embedded_bravyi_kitaev(
    std::size_t n, const std::vector<std::size_t>& allowed) {
  gf2::Matrix a = gf2::Matrix::identity(n);
  const std::size_t m = allowed.size();
  for (std::size_t i1 = 1; i1 <= m; ++i1) {
    const std::size_t low = i1 & (~i1 + 1);
    a.set(allowed[i1 - 1], allowed[i1 - 1], false);
    for (std::size_t k1 = i1 - low + 1; k1 <= i1; ++k1)
      a.set(allowed[i1 - 1], allowed[k1 - 1], true);
  }
  FEMTO_ENSURES(a.invertible());
  return a;
}

}  // namespace femto::core
