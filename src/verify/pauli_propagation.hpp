// Symbolic Pauli propagation: circuits as canonical rotation normal forms.
//
// Any femto circuit is an interleaving of Clifford gates and Pauli-string
// rotations exp(-i angle/2 P) (Rz/Rx/Ry, XX rotations, and the XY/Givens
// block, whose XX and YY halves commute). Pushing every rotation through the
// Clifford prefix C accumulated so far,
//
//   exp(-i a/2 P) . C  =  C . exp(-i a/2 C^dag P C),
//
// turns the circuit into U = C_total . R_m ... R_1 with conjugated rotations
// R_k. Rotation angles stay symbolic: a variational gate contributes the
// pair (angle coefficient, parameter index), so two compilations of the same
// PauliSum plan are compared exactly, for ALL parameter values at once, in
// O(gates * n) GF(2) word operations -- no statevector, no qubit limit.
//
// The propagator maintains C^dag as a sim::StabilizerTableau via input-side
// composition and emits SymbolicRotations with canonical +1-sign Hermitian
// strings. normalize() then brings rotation lists into a normal form
// (merging equal rotations across commuting neighbours, canonicalizing
// literal angles mod 2pi, and bubble-sorting under the commutation partial
// order) so that equal normal forms + equal trailing Cliffords certify
// unitary equivalence up to global phase.
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "circuit/quantum_circuit.hpp"
#include "pauli/pauli_string.hpp"
#include "sim/stabilizer.hpp"
#include "verify/spec.hpp"

namespace femto::verify {

/// exp(-i (coeff * theta[param])/2 * string), or exp(-i coeff/2 * string)
/// for literal rotations (param < 0). `string` is canonical: Hermitian with
/// letter-form sign +1 (any -1 is folded into coeff).
struct SymbolicRotation {
  pauli::PauliString string;
  double coeff = 0.0;
  int param = -1;
};

/// Canonical form of a circuit: trailing-Clifford tableau (stored as the
/// *inverse* map C^dag, which compares identically) plus the propagated
/// rotation list in time order.
struct CanonicalForm {
  std::vector<SymbolicRotation> rotations;
  sim::StabilizerTableau inverse_clifford;

  explicit CanonicalForm(std::size_t n) : inverse_clifford(n) {}
};

class PauliPropagator {
 public:
  explicit PauliPropagator(std::size_t n) : form_(n) {}

  [[nodiscard]] std::size_t num_qubits() const {
    return form_.inverse_clifford.num_qubits();
  }

  /// Feeds one gate in time order. Clifford gates (including literal
  /// rotations at pi/2 multiples) fold into the tableau; everything else
  /// becomes one or two symbolic rotations.
  void feed_gate(const circuit::Gate& g) {
    using circuit::GateKind;
    if (form_.inverse_clifford.input_gate(g)) return;
    switch (g.kind) {
      case GateKind::kRz:
        feed_rotation(single(g.q0, pauli::Letter::Z), g.angle, g.param);
        break;
      case GateKind::kRx:
        feed_rotation(single(g.q0, pauli::Letter::X), g.angle, g.param);
        break;
      case GateKind::kRy:
        feed_rotation(single(g.q0, pauli::Letter::Y), g.angle, g.param);
        break;
      case GateKind::kXXrot:
        feed_rotation(pair(g.q0, g.q1, pauli::Letter::X, pauli::Letter::X),
                      g.angle, g.param);
        break;
      case GateKind::kXYrot:
        // exp(-i a/2 (XX + YY)): the halves commute, order immaterial.
        feed_rotation(pair(g.q0, g.q1, pauli::Letter::X, pauli::Letter::X),
                      g.angle, g.param);
        feed_rotation(pair(g.q0, g.q1, pauli::Letter::Y, pauli::Letter::Y),
                      g.angle, g.param);
        break;
      default:
        // input_gate handles every non-rotation kind.
        FEMTO_ASSERT(false && "unreachable: non-Clifford non-rotation gate");
    }
  }

  /// Feeds exp(-i (coeff * theta[param])/2 * p) at the current position.
  /// `p` must be Hermitian with letter sign +-1 (the -1 is folded in).
  void feed_rotation(const pauli::PauliString& p, double coeff, int param) {
    SymbolicRotation rot;
    rot.string = form_.inverse_clifford.apply(p);
    const pauli::Complex sign = rot.string.sign();
    FEMTO_EXPECTS(std::abs(sign.imag()) < 1e-12);  // Hermitian image
    rot.coeff = coeff * sign.real();
    canonicalize_string(rot.string);
    rot.param = param;
    // Cheap online compaction: merge into an immediately preceding equal
    // rotation (the common close/reopen pattern).
    if (!form_.rotations.empty()) {
      SymbolicRotation& last = form_.rotations.back();
      if (last.param == rot.param && last.string.same_letters(rot.string)) {
        last.coeff += rot.coeff;
        if (droppable(last)) form_.rotations.pop_back();
        return;
      }
    }
    form_.rotations.push_back(std::move(rot));
  }

  void feed_spec_op(const SpecOp& op) {
    if (op.kind == SpecOp::Kind::kGate)
      feed_gate(op.gate);
    else
      feed_rotation(op.block.string, op.block.angle_coeff, op.block.param);
  }

  /// Finishes propagation: normalizes the rotation list and returns the
  /// canonical form.
  [[nodiscard]] CanonicalForm take(double tol = 1e-9) {
    normalize(form_.rotations, tol);
    return std::move(form_);
  }

  /// Forces letter-form sign +1 (phase exponent = #Y).
  static void canonicalize_string(pauli::PauliString& s) {
    s.set_phase_exponent(static_cast<int>((s.x() & s.z()).popcount()));
  }

  /// True when the rotation is a global-phase no-op: zero effective angle,
  /// or a literal angle at a multiple of 2pi (exp(-i pi P) = -1).
  [[nodiscard]] static bool droppable(const SymbolicRotation& r,
                                      double tol = 1e-9) {
    if (r.param >= 0) return std::abs(r.coeff) < tol;
    return std::abs(std::remainder(r.coeff, 2.0 * M_PI)) < tol;
  }

  /// Normal form of a rotation list: canonical literal angles in (-pi, pi],
  /// equal rotations merged across commuting separators, and a bounded
  /// bubble sort that only swaps commuting neighbours (so every pass
  /// preserves the unitary exactly). Structure: sort to a fixpoint first,
  /// then merge; a merge shrinks the list (possibly unblocking new swaps),
  /// so the outer loop re-sorts only while merges keep landing -- the
  /// O(m^2) merge scan runs at most once per removed element instead of
  /// once per bubble pass.
  static void normalize(std::vector<SymbolicRotation>& rots, double tol = 1e-9) {
    for (SymbolicRotation& r : rots)
      if (r.param < 0) r.coeff = canonical_angle(r.coeff);
    std::erase_if(rots, [&](const SymbolicRotation& r) {
      return droppable(r, tol);
    });
    const std::size_t max_rounds = rots.size() + 2;
    for (std::size_t round = 0; round < max_rounds; ++round) {
      const std::size_t max_passes = rots.size() + 1;
      for (std::size_t pass = 0; pass < max_passes; ++pass) {
        bool swapped = false;
        for (std::size_t i = 0; i + 1 < rots.size(); ++i) {
          if (rots[i].string.commutes_with(rots[i + 1].string) &&
              order_before(rots[i + 1], rots[i])) {
            std::swap(rots[i], rots[i + 1]);
            swapped = true;
          }
        }
        if (!swapped) break;
      }
      if (!merge_pass(rots, tol)) break;
    }
  }

  /// Strict weak order used as the bubble-sort key: parameter index first
  /// (literals last), then the symplectic words.
  [[nodiscard]] static bool order_before(const SymbolicRotation& a,
                                         const SymbolicRotation& b) {
    const auto rank = [](int param) {
      return param < 0 ? std::numeric_limits<int>::max() : param;
    };
    if (rank(a.param) != rank(b.param)) return rank(a.param) < rank(b.param);
    if (a.string.x().words() != b.string.x().words())
      return a.string.x().words() < b.string.x().words();
    return a.string.z().words() < b.string.z().words();
  }

 private:
  [[nodiscard]] pauli::PauliString single(std::size_t q, pauli::Letter l) const {
    return pauli::PauliString::single(num_qubits(), q, l);
  }

  [[nodiscard]] pauli::PauliString pair(std::size_t a, std::size_t b,
                                        pauli::Letter la,
                                        pauli::Letter lb) const {
    pauli::PauliString p(num_qubits());
    p.set_letter(a, la);
    p.set_letter(b, lb);
    return p;
  }

  /// Literal angle mod 2pi into (-pi, pi] (exp(-i a/2 P) at a and a + 2pi
  /// differ by a global -1).
  [[nodiscard]] static double canonical_angle(double a) {
    double r = std::remainder(a, 2.0 * M_PI);  // (-pi, pi]
    if (r <= -M_PI) r += 2.0 * M_PI;
    return r;
  }

  /// Merges rot[j] into rot[i] when they agree on (letters, param) and every
  /// rotation in between commutes with them (a unitary-preserving move).
  static bool merge_pass(std::vector<SymbolicRotation>& rots, double tol) {
    bool changed = false;
    for (std::size_t i = 0; i < rots.size(); ++i) {
      for (std::size_t j = i + 1; j < rots.size();) {
        if (rots[j].param == rots[i].param &&
            rots[j].string.same_letters(rots[i].string)) {
          rots[i].coeff += rots[j].coeff;
          rots.erase(rots.begin() + static_cast<std::ptrdiff_t>(j));
          changed = true;
          continue;
        }
        if (!rots[j].string.commutes_with(rots[i].string)) break;
        ++j;
      }
      if (droppable(rots[i], tol)) {
        rots.erase(rots.begin() + static_cast<std::ptrdiff_t>(i));
        changed = true;
        --i;
      }
    }
    return changed;
  }

  CanonicalForm form_;
};

/// Canonical form of a whole circuit.
[[nodiscard]] inline CanonicalForm propagate_circuit(
    const circuit::QuantumCircuit& c, double tol = 1e-9) {
  PauliPropagator prop(c.num_qubits());
  for (const circuit::Gate& g : c.gates()) prop.feed_gate(g);
  return prop.take(tol);
}

/// Canonical form of a compilation spec.
[[nodiscard]] inline CanonicalForm propagate_spec(std::size_t n,
                                                  const CompilationSpec& spec,
                                                  double tol = 1e-9) {
  PauliPropagator prop(n);
  for (const SpecOp& op : spec) prop.feed_spec_op(op);
  return prop.take(tol);
}

}  // namespace femto::verify
