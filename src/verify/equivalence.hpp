// Tiered circuit-equivalence verification.
//
// The paper's whole value proposition is aggressive circuit optimization
// that must preserve the simulated unitary. This checker certifies that,
// scalably, in three tiers:
//
//   1. Exact Clifford tableau comparison (sim/stabilizer.hpp): both circuits
//      fold into stabilizer tableaus -> equality IS equivalence up to global
//      phase. O(gates * n), any qubit count. Decisive in both directions.
//   2. Symbolic Pauli propagation (verify/pauli_propagation.hpp): rotation
//      angles stay symbolic, so two compilations of the same PauliSum plan
//      are certified for every parameter value at once. Matching normal
//      forms prove equivalence; diverging normal forms localize the first
//      differing rotation / tableau generator. (Normalization is sound but
//      not complete: exotic circuit pairs can diverge syntactically while
//      agreeing as unitaries -- the dense tier arbitrates when it can.)
//   3. Randomized dense spot-check (small n only): random states + random
//      parameter draws through the statevector simulator. Probabilistic,
//      used as the arbiter for tier-2 mismatches and as the last word on
//      literal-angle corner cases.
//
// Every answer comes back as a structured EquivalenceReport carrying the
// deciding method and, for rejections, where and why the circuits diverge.
#pragma once

#include <algorithm>
#include <bit>
#include <cmath>
#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "sim/batched.hpp"
#include "sim/stabilizer.hpp"
#include "sim/statevector.hpp"
#include "verify/pauli_propagation.hpp"
#include "verify/spec.hpp"

namespace femto::verify {

enum class EquivalenceStatus { kEquivalent, kNotEquivalent, kIndeterminate };

enum class EquivalenceMethod {
  kNone,
  kCliffordTableau,   // tier 1: exact, both directions
  kPauliPropagation,  // tier 2: exact certificate, symbolic in the params
  kDenseSpotCheck,    // tier 3: randomized numeric arbiter (small n)
};

[[nodiscard]] inline const char* to_string(EquivalenceStatus s) {
  switch (s) {
    case EquivalenceStatus::kEquivalent: return "equivalent";
    case EquivalenceStatus::kNotEquivalent: return "NOT equivalent";
    case EquivalenceStatus::kIndeterminate: return "indeterminate";
  }
  return "?";
}

[[nodiscard]] inline const char* to_string(EquivalenceMethod m) {
  switch (m) {
    case EquivalenceMethod::kNone: return "none";
    case EquivalenceMethod::kCliffordTableau: return "clifford-tableau";
    case EquivalenceMethod::kPauliPropagation: return "pauli-propagation";
    case EquivalenceMethod::kDenseSpotCheck: return "dense-spot-check";
  }
  return "?";
}

/// Structured verdict: what was decided, by which tier, and -- for
/// rejections -- where the circuits diverge.
struct EquivalenceReport {
  static constexpr std::size_t kNoIndex = static_cast<std::size_t>(-1);

  EquivalenceStatus status = EquivalenceStatus::kIndeterminate;
  EquivalenceMethod method = EquivalenceMethod::kNone;
  /// Index of the first diverging normalized rotation (tier 2) -- kNoIndex
  /// when the divergence is in the trailing Clifford or not localized.
  std::size_t mismatch_index = kNoIndex;
  /// True when the verdict is decisive: tableau / propagation equivalence
  /// certificates, tableau rejections, and dense counterexamples. Left
  /// false for the two inherently heuristic verdicts -- kNotEquivalent by
  /// Pauli propagation alone (normalization is sound but not complete, so a
  /// diverging normal form is extremely strong evidence rather than a
  /// proof) and kEquivalent by dense spot-check (random trials are
  /// probabilistic).
  bool proven = false;
  std::string detail;

  [[nodiscard]] bool equivalent() const {
    return status == EquivalenceStatus::kEquivalent;
  }

  [[nodiscard]] std::string to_string() const {
    std::string out = verify::to_string(status);
    if (status == EquivalenceStatus::kNotEquivalent && !proven)
      out += " (unproven)";
    out += " [";
    out += verify::to_string(method);
    out += "]";
    if (!detail.empty()) {
      out += ": ";
      out += detail;
    }
    return out;
  }
};

struct EquivalenceOptions {
  /// Tolerance on angles/coefficients (symbolic) and overlaps (dense).
  double tol = 1e-9;
  /// Tier-3 arbitration limit: dense spot-checks only at or below this size.
  std::size_t dense_max_qubits = 12;
  /// Random (state, parameter) draws per dense spot-check.
  int dense_trials = 2;
  std::uint64_t seed = 0x5eedfe11ULL;
  /// Disable to keep verification purely symbolic (always scalable).
  bool allow_dense_fallback = true;
};

class EquivalenceChecker {
 public:
  explicit EquivalenceChecker(EquivalenceOptions options = {})
      : options_(options) {}

  [[nodiscard]] const EquivalenceOptions& options() const { return options_; }

  /// Are two circuits the same unitary up to global phase (for variational
  /// circuits: for every parameter assignment)?
  [[nodiscard]] EquivalenceReport check(const circuit::QuantumCircuit& a,
                                        const circuit::QuantumCircuit& b) const {
    if (a.num_qubits() != b.num_qubits()) {
      EquivalenceReport report;
      report.status = EquivalenceStatus::kNotEquivalent;
      report.proven = true;
      report.detail = "qubit counts differ: " + std::to_string(a.num_qubits()) +
                      " vs " + std::to_string(b.num_qubits());
      return report;
    }
    // Tier 1: both circuits Clifford -> tableau equality is decisive.
    const auto ta = sim::StabilizerTableau::from_circuit(a);
    if (ta.has_value()) {
      const auto tb = sim::StabilizerTableau::from_circuit(b);
      if (tb.has_value()) return report_clifford(*ta, *tb);
    }
    // Tier 2: symbolic propagation.
    EquivalenceReport report =
        compare_forms(propagate_circuit(a, options_.tol),
                      propagate_circuit(b, options_.tol));
    if (report.equivalent()) return report;
    // Tier 3: arbitration for small instances.
    if (dense_possible(a.num_qubits()))
      return arbitrate_dense(report, [&](sim::StateVector& sv,
                                         std::span<const double> params) {
        sv.apply_circuit(a, params);
      }, [&](sim::StateVector& sv, std::span<const double> params) {
        sv.apply_circuit(b, params);
      }, [&](sim::BatchedState& bs) {
        bs.apply_circuit(a);
      }, [&](sim::BatchedState& bs) {
        bs.apply_circuit(b);
      }, std::max(a.num_params(), b.num_params()), a.num_qubits());
    return report;
  }

  /// Does a circuit implement its compilation spec (the ordered rotation
  /// blocks + bookkeeping gates recorded by the compiler)?
  [[nodiscard]] EquivalenceReport check_spec(
      const circuit::QuantumCircuit& circuit,
      const CompilationSpec& spec) const {
    const std::size_t n = circuit.num_qubits();
    EquivalenceReport report =
        compare_forms(propagate_circuit(circuit, options_.tol),
                      propagate_spec(n, spec, options_.tol));
    if (report.equivalent() || !dense_possible(n)) return report;
    int num_params = circuit.num_params();
    for (const SpecOp& op : spec) {
      const int p = op.kind == SpecOp::Kind::kGate ? op.gate.param
                                                   : op.block.param;
      num_params = std::max(num_params, p + 1);
    }
    return arbitrate_dense(report, [&](sim::StateVector& sv,
                                       std::span<const double> params) {
      sv.apply_circuit(circuit, params);
    }, [&](sim::StateVector& sv, std::span<const double> params) {
      apply_spec(sv, spec, params);
    }, [&](sim::BatchedState& bs) {
      bs.apply_circuit(circuit);
    }, [&](sim::BatchedState& bs) {
      apply_spec_batched(bs, spec);
    }, num_params, n);
  }

  /// Tier-2 core, exposed for tests and benches: compares two canonical
  /// forms and localizes the first divergence.
  [[nodiscard]] EquivalenceReport compare_forms(const CanonicalForm& fa,
                                                const CanonicalForm& fb) const {
    EquivalenceReport report;
    report.method = EquivalenceMethod::kPauliPropagation;
    const std::size_t common =
        std::min(fa.rotations.size(), fb.rotations.size());
    for (std::size_t k = 0; k < common; ++k) {
      const SymbolicRotation& ra = fa.rotations[k];
      const SymbolicRotation& rb = fb.rotations[k];
      const bool same = ra.param == rb.param &&
                        ra.string.same_letters(rb.string) &&
                        coeffs_match(ra, rb);
      if (!same) {
        report.status = EquivalenceStatus::kNotEquivalent;
        report.mismatch_index = k;
        report.detail = "rotation " + std::to_string(k) + " differs: " +
                        describe(ra) + " vs " + describe(rb);
        return report;
      }
    }
    if (fa.rotations.size() != fb.rotations.size()) {
      report.status = EquivalenceStatus::kNotEquivalent;
      report.mismatch_index = common;
      const auto& longer =
          fa.rotations.size() > fb.rotations.size() ? fa : fb;
      report.detail = "rotation counts differ (" +
                      std::to_string(fa.rotations.size()) + " vs " +
                      std::to_string(fb.rotations.size()) +
                      "); first unmatched: " +
                      describe(longer.rotations[common]);
      return report;
    }
    const std::string mismatch =
        sim::tableau_mismatch(fa.inverse_clifford, fb.inverse_clifford);
    if (!mismatch.empty()) {
      report.status = EquivalenceStatus::kNotEquivalent;
      report.detail = "trailing Clifford differs: " + mismatch;
      return report;
    }
    report.status = EquivalenceStatus::kEquivalent;
    report.proven = true;  // matching normal forms certify equivalence
    report.detail = std::to_string(fa.rotations.size()) +
                    " rotations matched symbolically";
    return report;
  }

 private:
  [[nodiscard]] static EquivalenceReport report_clifford(
      const sim::StabilizerTableau& ta, const sim::StabilizerTableau& tb) {
    EquivalenceReport report;
    report.method = EquivalenceMethod::kCliffordTableau;
    report.proven = true;  // tableau equality is decisive both ways
    const std::string mismatch = sim::tableau_mismatch(ta, tb);
    if (mismatch.empty()) {
      report.status = EquivalenceStatus::kEquivalent;
      report.detail = "Clifford tableaus identical";
    } else {
      report.status = EquivalenceStatus::kNotEquivalent;
      report.detail = mismatch;
    }
    return report;
  }

  [[nodiscard]] bool dense_possible(std::size_t n) const {
    return options_.allow_dense_fallback && n <= options_.dense_max_qubits;
  }

  [[nodiscard]] bool coeffs_match(const SymbolicRotation& a,
                                  const SymbolicRotation& b) const {
    return std::abs(a.coeff - b.coeff) <=
           options_.tol * std::max(1.0, std::abs(a.coeff));
  }

  [[nodiscard]] static std::string describe(const SymbolicRotation& r) {
    std::string out = "exp(-i/2 * " + std::to_string(r.coeff);
    if (r.param >= 0) out += "*t" + std::to_string(r.param);
    out += " * " + r.string.to_string() + ")";
    return out;
  }

  static void apply_spec(sim::StateVector& sv, const CompilationSpec& spec,
                         std::span<const double> params) {
    for (const SpecOp& op : spec) {
      if (op.kind == SpecOp::Kind::kGate) {
        sv.apply_gate(op.gate, params);
        continue;
      }
      const synth::RotationBlock& b = op.block;
      const double angle =
          b.param >= 0 ? b.angle_coeff * params[static_cast<std::size_t>(b.param)]
                       : b.angle_coeff;
      sv.apply_pauli_exp(b.string, angle);
    }
  }

  /// Literal-angle spec application across all trial lanes at once (only
  /// reached from the batched arbitration path, where num_params == 0).
  static void apply_spec_batched(sim::BatchedState& bs,
                                 const CompilationSpec& spec) {
    for (const SpecOp& op : spec) {
      if (op.kind == SpecOp::Kind::kGate) {
        bs.apply_gate(op.gate);
        continue;
      }
      FEMTO_EXPECTS(op.block.param < 0);
      bs.apply_pauli_exp(op.block.string, op.block.angle_coeff);
    }
  }

  /// Tier 3: random states and random parameter draws decide a tier-2
  /// mismatch. Both sides see identical draws; states are compared entry by
  /// entry after global-phase alignment (LINEAR sensitivity in any angle
  /// error -- a raw |<a|b>| overlap would suppress angle differences
  /// quadratically and wave small corruptions through). A counterexample is
  /// decisive (proven); agreement is probabilistic, so acceptance stays
  /// proven == false.
  template <typename ApplyA, typename ApplyB, typename BatchApplyA,
            typename BatchApplyB>
  [[nodiscard]] EquivalenceReport arbitrate_dense(
      const EquivalenceReport& symbolic, ApplyA&& apply_a, ApplyB&& apply_b,
      BatchApplyA&& batch_apply_a, BatchApplyB&& batch_apply_b, int num_params,
      std::size_t n) const {
    Rng rng(options_.seed);
    // Batching pads the trial count to a power of two and holds two padded
    // copies at once, so it only runs when that stays cheap: the padded
    // buffer must be representable at all (BatchedState::fits -- near the
    // n = 28 dense ceiling it is not) and no bigger than 2^24 amplitudes
    // (256 MiB per copy). Otherwise the per-trial loop below decides the
    // same verdict with the pre-batched memory profile of 2 * 2^n.
    const std::size_t trials =
        static_cast<std::size_t>(std::max(0, options_.dense_trials));
    const bool batchable =
        trials > 0 && sim::BatchedState::fits(n, trials) &&
        (std::bit_ceil(trials) << n) <= (std::size_t{1} << 24);
    if (num_params <= 0 && options_.dense_trials > 0 && batchable) {
      // Literal-angle case: every trial shares the (empty) parameter draw,
      // so all trial states advance together through one batched circuit
      // application (sim::BatchedState). The draws, per-trial amplitudes and
      // verdicts are identical to the per-trial loop below: the parameter
      // loop there draws nothing when num_params == 0, and the batched
      // kernels are bit-identical to the per-state ones.
      std::vector<sim::StateVector> states;
      states.reserve(trials);
      for (int trial = 0; trial < options_.dense_trials; ++trial) {
        sim::StateVector sv(n);
        for (auto& amp : sv.amplitudes())
          amp = sim::Complex{rng.normal(), rng.normal()};
        sv.normalize();
        states.push_back(std::move(sv));
      }
      sim::BatchedState ba = sim::BatchedState::from_states(states);
      // The staging states are no longer needed: release them before the
      // second padded copy so peak memory is staging + one copy, not
      // staging + two.
      states = {};
      sim::BatchedState bb = ba;
      batch_apply_a(ba);
      batch_apply_b(bb);
      for (int trial = 0; trial < options_.dense_trials; ++trial) {
        const std::size_t t = static_cast<std::size_t>(trial);
        const double diff = phase_aligned_distance(ba.lane(t), bb.lane(t));
        if (diff > std::sqrt(options_.tol))
          return dense_counterexample(symbolic, diff);
      }
      return dense_agreement();
    }
    for (int trial = 0; trial < options_.dense_trials; ++trial) {
      std::vector<double> params(static_cast<std::size_t>(
          std::max(0, num_params)));
      for (double& p : params) p = rng.uniform(-2.0, 2.0);
      sim::StateVector sa(n);
      for (auto& amp : sa.amplitudes())
        amp = sim::Complex{rng.normal(), rng.normal()};
      sa.normalize();
      sim::StateVector sb = sa;
      apply_a(sa, std::span<const double>(params));
      apply_b(sb, std::span<const double>(params));
      const double diff = phase_aligned_distance(sa, sb);
      if (diff > std::sqrt(options_.tol))
        return dense_counterexample(symbolic, diff);
    }
    return dense_agreement();
  }

  [[nodiscard]] static EquivalenceReport dense_counterexample(
      const EquivalenceReport& symbolic, double diff) {
    EquivalenceReport report = symbolic;
    report.method = EquivalenceMethod::kDenseSpotCheck;
    report.status = EquivalenceStatus::kNotEquivalent;
    report.proven = true;
    report.detail += " (dense spot-check confirms: max state deviation " +
                     std::to_string(diff) + ")";
    return report;
  }

  [[nodiscard]] EquivalenceReport dense_agreement() const {
    EquivalenceReport report;
    report.method = EquivalenceMethod::kDenseSpotCheck;
    report.status = EquivalenceStatus::kEquivalent;
    report.detail = "symbolic forms diverged but " +
                    std::to_string(options_.dense_trials) +
                    " random-state trials agree (probabilistic)";
    return report;
  }

  /// max_i |a_i - e^{i phi} b_i| with phi fixed from a's largest amplitude.
  [[nodiscard]] static double phase_aligned_distance(
      const sim::StateVector& a, const sim::StateVector& b) {
    std::size_t imax = 0;
    double best = -1.0;
    for (std::size_t i = 0; i < a.dim(); ++i)
      if (std::abs(a.amplitude(i)) > best) {
        best = std::abs(a.amplitude(i));
        imax = i;
      }
    if (best < 1e-12 || std::abs(b.amplitude(imax)) < 1e-12) return 1e9;
    sim::Complex phase = a.amplitude(imax) / b.amplitude(imax);
    phase /= std::abs(phase);
    double diff = 0.0;
    for (std::size_t i = 0; i < a.dim(); ++i)
      diff = std::max(diff,
                      std::abs(a.amplitude(i) - phase * b.amplitude(i)));
    return diff;
  }

  EquivalenceOptions options_;
};

}  // namespace femto::verify
