// Shared fixtures for the verification tests and benches (tests/ and
// bench/ both exercise the checker on the same kinds of inputs; keeping the
// generators here stops the copies from drifting apart). Not part of the
// production API.
#pragma once

#include <vector>

#include "circuit/quantum_circuit.hpp"
#include "common/rng.hpp"
#include "gf2/linear_synthesis.hpp"
#include "synth/cost_model.hpp"

namespace femto::verify::testing {

/// Random rotation-block sequence over n qubits: strings of weight 2 up to
/// 2 + extra_weight, variational params with probability param_probability,
/// literal angles otherwise.
[[nodiscard]] inline std::vector<synth::RotationBlock> random_rotation_blocks(
    std::size_t n, int count, Rng& rng, double param_probability = 0.7,
    std::size_t extra_weight = 4) {
  std::vector<synth::RotationBlock> blocks;
  int param = 0;
  for (int k = 0; k < count; ++k) {
    synth::RotationBlock b;
    pauli::PauliString s(n);
    const std::size_t weight = 2 + rng.index(extra_weight);
    while (s.weight() < weight)
      s.set_letter(rng.index(n), static_cast<pauli::Letter>(1 + rng.index(3)));
    b.string = s;
    b.target = s.support().lowest_set();
    b.angle_coeff = rng.uniform(-1.5, 1.5);
    b.param = rng.bernoulli(param_probability) ? param++ : -1;
    blocks.push_back(std::move(b));
  }
  return blocks;
}

/// Corrupts a circuit by flipping the direction of the first CNOT at or
/// after `from`. Returns the flipped gate's index, or the circuit size when
/// no CNOT was found (circuit unchanged).
inline std::size_t flip_first_cnot(circuit::QuantumCircuit& c,
                                   std::size_t from = 0) {
  auto& gates = c.mutable_gates();
  for (std::size_t k = from; k < gates.size(); ++k) {
    if (gates[k].kind == circuit::GateKind::kCnot) {
      std::swap(gates[k].q0, gates[k].q1);
      return k;
    }
  }
  return gates.size();
}

/// The CNOT network of a GF(2) matrix as a circuit (the U_Gamma frame used
/// by the cross-encoding identity C_enc . U_Gamma == U_Gamma . C_jw).
[[nodiscard]] inline circuit::QuantumCircuit cnot_network_circuit(
    std::size_t n, const gf2::Matrix& m) {
  circuit::QuantumCircuit c(n);
  for (const gf2::CnotGate& g : gf2::synthesize_pmh(m))
    c.append(circuit::Gate::cnot(g.control, g.target));
  return c;
}

}  // namespace femto::verify::testing
