// Compilation specification for circuit verification.
//
// stage_emit (core/compiler.hpp) records, alongside the emitted circuit, the
// exact ordered operation stream the circuit is supposed to implement: the
// decompression CNOTs, the bosonic-block gates, and every sorted rotation
// block handed to the synthesizer. The spec is the *input* to synthesis, not
// its output, so checking the emitted circuit against it
// (verify/equivalence.hpp) is an independent end-to-end certificate over the
// synthesizer, the peephole passes, and the synthesis cache -- at any qubit
// count, in milliseconds, without a 2^n vector.
//
// This header is deliberately light (gate IR + rotation blocks only) so the
// core compiler can record specs without depending on the verification
// machinery.
#pragma once

#include <vector>

#include "circuit/gate.hpp"
#include "synth/cost_model.hpp"

namespace femto::verify {

/// One specified operation: either a literal gate (Clifford bookkeeping such
/// as decompression CNOTs, or the bosonic Sdg/XYrot/S triple) or a rotation
/// block exp(-i angle/2 * string) as defined by synth::RotationBlock.
struct SpecOp {
  enum class Kind { kGate, kRotation };
  Kind kind = Kind::kGate;
  circuit::Gate gate;          // valid when kind == kGate
  synth::RotationBlock block;  // valid when kind == kRotation

  [[nodiscard]] static SpecOp from_gate(circuit::Gate g) {
    SpecOp op;
    op.kind = Kind::kGate;
    op.gate = g;
    return op;
  }

  [[nodiscard]] static SpecOp from_block(synth::RotationBlock b) {
    SpecOp op;
    op.kind = Kind::kRotation;
    op.block = std::move(b);
    return op;
  }
};

/// Time-ordered specification of one compiled circuit.
using CompilationSpec = std::vector<SpecOp>;

/// Spec of a bare rotation-block sequence (what synthesize_sequence emits).
[[nodiscard]] inline CompilationSpec make_spec(
    const std::vector<synth::RotationBlock>& blocks) {
  CompilationSpec spec;
  spec.reserve(blocks.size());
  for (const synth::RotationBlock& b : blocks)
    spec.push_back(SpecOp::from_block(b));
  return spec;
}

}  // namespace femto::verify
