// Tests for the extension modules: ternary-tree transform, measurement
// grouping / shot-based estimation, the Trotter-step compiler, and
// reference-state preparation.
#include <gtest/gtest.h>

#include "chem/fci.hpp"
#include "chem/integrals.hpp"
#include "chem/molecules.hpp"
#include "chem/mo_integrals.hpp"
#include "chem/scf.hpp"
#include "core/compiler.hpp"
#include "core/dynamics.hpp"
#include "core/sorting.hpp"
#include "vqe/qcc.hpp"
#include "vqe/uccsd.hpp"
#include "sim/lanczos.hpp"
#include "sim/statevector.hpp"
#include "transform/linear_encoding.hpp"
#include "transform/ternary_tree.hpp"
#include "vqe/measurement.hpp"

namespace femto {
namespace {

using fermion::FermionOperator;

// ---------------------------------------------------------------- ternary

class TernaryTreeProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TernaryTreeProperty, MajoranasAntiCommute) {
  const std::size_t n = GetParam();
  const transform::TernaryTree tt(n);
  for (std::size_t a = 0; a < 2 * n; ++a) {
    EXPECT_TRUE(tt.majorana(a).is_hermitian());
    for (std::size_t b = 0; b < 2 * n; ++b) {
      if (a == b) continue;
      EXPECT_FALSE(tt.majorana(a).commutes_with(tt.majorana(b)))
          << "gamma_" << a << " vs gamma_" << b;
    }
  }
}

TEST_P(TernaryTreeProperty, CanonicalAnticommutationRelations) {
  const std::size_t n = GetParam();
  const transform::TernaryTree tt(n);
  const auto max_coeff = [](const pauli::PauliSum& s) {
    double m = 0;
    for (const auto& t : s.terms()) m = std::max(m, std::abs(t.coefficient));
    return m;
  };
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const FermionOperator ai = FermionOperator::ladder(i, false);
      const FermionOperator adj = FermionOperator::ladder(j, true);
      pauli::PauliSum anti = tt.map(ai * adj + adj * ai);
      anti.add({i == j ? -1.0 : 0.0}, pauli::PauliString::identity(n));
      anti.prune();
      EXPECT_LT(max_coeff(anti), 1e-12) << i << "," << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, TernaryTreeProperty,
                         ::testing::Values(1, 2, 4, 5, 8));

TEST(TernaryTree, WeightBeatsJordanWignerOnAverage) {
  const std::size_t n = 13;  // full ternary tree of depth 2 + change
  const transform::TernaryTree tt(n);
  const auto jw = transform::LinearEncoding::jordan_wigner(n);
  double w_tt = 0, w_jw = 0;
  for (std::size_t mode = 0; mode < n; ++mode) {
    // Bind the sums to locals: ranged-for over a temporary's .terms() would
    // dangle (the temporary is not lifetime-extended through the accessor).
    const pauli::PauliSum lad_tt = tt.ladder(mode, false);
    const pauli::PauliSum lad_jw = transform::jw_ladder(n, mode, false);
    for (const auto& t : lad_tt.terms())
      w_tt += static_cast<double>(t.string.weight());
    for (const auto& t : lad_jw.terms())
      w_jw += static_cast<double>(t.string.weight());
    (void)jw;
  }
  EXPECT_LT(w_tt, w_jw);
}

TEST(TernaryTree, SpectrumMatchesJordanWigner) {
  // A small interacting Hamiltonian must have the same ground energy under
  // the ternary tree as under JW (both are exact encodings).
  const std::size_t n = 4;
  FermionOperator h;
  const double eps[4] = {-1.0, -0.4, 0.3, 0.9};
  for (std::size_t i = 0; i < n; ++i)
    h = h + eps[i] * (FermionOperator::ladder(i, true) *
                      FermionOperator::ladder(i, false));
  const FermionOperator exc = FermionOperator::term(
      {0.4, 0.0}, {{0, true}, {1, true}, {2, false}, {3, false}});
  h = h + exc + exc.adjoint();
  const transform::TernaryTree tt(n);
  const auto jw = transform::LinearEncoding::jordan_wigner(n);
  const double e_tt = sim::lanczos_ground_energy(tt.map(h), n).ground_energy;
  const double e_jw = sim::lanczos_ground_energy(jw.map(h), n).ground_energy;
  EXPECT_NEAR(e_tt, e_jw, 1e-8);
}

// ------------------------------------------------------------ measurement

TEST(Measurement, QubitWiseCommutePredicate) {
  using pauli::PauliString;
  EXPECT_TRUE(vqe::qubit_wise_commute(PauliString::from_string("XIZ"),
                                      PauliString::from_string("XZI")));
  EXPECT_TRUE(vqe::qubit_wise_commute(PauliString::from_string("III"),
                                      PauliString::from_string("XYZ")));
  EXPECT_FALSE(vqe::qubit_wise_commute(PauliString::from_string("XIZ"),
                                       PauliString::from_string("ZIZ")));
}

TEST(Measurement, GroupsAreValidAndCoverAllTerms) {
  const auto mol = chem::make_h2(1.4);
  auto basis = chem::build_sto3g(mol);
  chem::normalize_basis(basis);
  const auto ints = chem::compute_integrals(mol, basis);
  const auto scf = chem::run_rhf(mol, ints);
  const auto so = chem::to_spin_orbitals(chem::transform_to_mo(mol, ints, scf));
  const auto hq = transform::LinearEncoding::jordan_wigner(so.n).map(
      chem::build_hamiltonian(so));
  Rng rng(5);
  const auto mg = vqe::group_commuting_terms(hq, rng);
  std::size_t covered = 0;
  for (std::size_t g = 0; g < mg.groups.size(); ++g) {
    covered += mg.groups[g].size();
    for (std::size_t a : mg.groups[g])
      for (std::size_t b : mg.groups[g])
        EXPECT_TRUE(vqe::qubit_wise_commute(hq.terms()[a].string,
                                            hq.terms()[b].string));
  }
  EXPECT_EQ(covered, hq.size());
  // Grouping must beat one-setting-per-term.
  EXPECT_LT(mg.groups.size(), hq.size());
}

TEST(Measurement, SampledExpectationConvergesToExact) {
  const auto mol = chem::make_h2(1.4);
  auto basis = chem::build_sto3g(mol);
  chem::normalize_basis(basis);
  const auto ints = chem::compute_integrals(mol, basis);
  const auto scf = chem::run_rhf(mol, ints);
  const auto so = chem::to_spin_orbitals(chem::transform_to_mo(mol, ints, scf));
  const auto hq = transform::LinearEncoding::jordan_wigner(so.n).map(
      chem::build_hamiltonian(so));
  // A correlated state: HF plus the double excitation partially applied.
  sim::StateVector psi = sim::StateVector::basis_state(so.n, 0b0011);
  psi.apply_pauli_exp(pauli::PauliString::from_string("YXXX"), 0.4);
  const double exact = psi.expectation(hq).real();
  Rng rng(11);
  const auto mg = vqe::group_commuting_terms(hq, rng);
  const double est = vqe::sampled_expectation(psi, hq, mg, 200000, rng);
  EXPECT_NEAR(est, exact, 5e-3);
  // Few shots: still unbiased but noisier; sanity band only.
  const double rough = vqe::sampled_expectation(psi, hq, mg, 500, rng);
  EXPECT_NEAR(rough, exact, 0.3);
}

// ---------------------------------------------------------------- trotter

TEST(Dynamics, TrotterStepMatchesExactForCommutingHamiltonian) {
  // Diagonal (all-Z) Hamiltonian: Trotter is exact; the compiled step must
  // match exp(-i dt H) exactly.
  const std::size_t n = 4;
  pauli::PauliSum h(n);
  h.add({0.7, 0.0}, pauli::PauliString::from_string("ZZII"));
  h.add({-0.3, 0.0}, pauli::PauliString::from_string("IZZI"));
  h.add({0.2, 0.0}, pauli::PauliString::from_string("ZIIZ"));
  const double dt = 0.31;
  const auto res = core::compile_trotter_step(n, h, dt);
  sim::StateVector actual(n);
  for (std::size_t q = 0; q < n; ++q)
    actual.apply_gate(circuit::Gate::h(q));  // superposition input
  sim::StateVector expect = actual;
  actual.apply_circuit(res.step);
  for (const auto& t : h.terms())
    expect.apply_pauli_exp(t.string, 2.0 * t.coefficient.real() * dt);
  EXPECT_NEAR(std::abs(expect.inner(actual)), 1.0, 1e-10);
}

TEST(Dynamics, SortingReducesModelCost) {
  // Hubbard-like Hamiltonian: sorted cost <= naive cost.
  const std::size_t n = 6;
  fermion::FermionOperator h;
  for (std::size_t i = 0; i + 2 < n; ++i) {
    h.add_term({-1.0, 0.0}, {{i, true}, {i + 2, false}});
    h.add_term({-1.0, 0.0}, {{i + 2, true}, {i, false}});
  }
  for (std::size_t i = 0; i < n / 2; ++i)
    h.add_term({4.0, 0.0}, {{2 * i, true}, {2 * i, false},
                            {2 * i + 1, true}, {2 * i + 1, false}});
  const auto hq = transform::LinearEncoding::jordan_wigner(n).map(h);
  const auto res = core::compile_trotter_step(n, hq, 0.05);
  EXPECT_LE(res.model_cnots, res.naive_cnots);
  EXPECT_GT(res.model_cnots, 0);
  EXPECT_EQ(res.step.cnot_count(), res.step.cnot_count());
}


// ------------------------------------------------------------------- qcc

TEST(Qcc, ReachesFciForH2) {
  // The QCC entangler pool drawn from the UCCSD generators spans the same
  // directions; greedy screening + reoptimization must reach FCI for H2.
  const auto mol = chem::make_h2(1.4);
  auto basis = chem::build_sto3g(mol);
  chem::normalize_basis(basis);
  const auto ints = chem::compute_integrals(mol, basis);
  const auto scf = chem::run_rhf(mol, ints);
  const auto so = chem::to_spin_orbitals(chem::transform_to_mo(mol, ints, scf));
  const auto fci = chem::run_fci(so);
  const auto enc = transform::LinearEncoding::jordan_wigner(so.n);
  const auto hq = enc.map(chem::build_hamiltonian(so));
  std::vector<pauli::PauliSum> gens;
  for (const auto& t : vqe::uccsd_hmp2_terms(so))
    gens.push_back(enc.map(t.generator()));
  const auto pool = vqe::qcc_pool_from_generators(gens);
  EXPECT_GE(pool.size(), 2u);
  const auto res = vqe::select_qcc_entanglers(
      so.n, hq, pool, (std::size_t{1} << so.nelec) - 1, 6);
  EXPECT_NEAR(res.energy, fci.energy, 1e-6);
  // Entanglers are compilable by the same sorting machinery.
  std::vector<synth::RotationBlock> blocks;
  for (std::size_t k = 0; k < res.entanglers.size(); ++k) {
    synth::RotationBlock b;
    b.string = res.entanglers[k];
    b.angle_coeff = 1.0;
    b.param = static_cast<int>(k);
    b.target = b.string.support().lowest_set();
    blocks.push_back(b);
  }
  Rng rng(3);
  const auto ordered = core::sort_advanced(blocks, rng);
  EXPECT_EQ(ordered.size(), blocks.size());
  EXPECT_LE(synth::sequence_model_cost(ordered),
            synth::sequence_model_cost(blocks));
}

TEST(Dynamics, SecondOrderTrotterErrorScalesCubically) {
  // Non-commuting two-term Hamiltonian: per-step error ~ C1 dt^2 for first
  // order and ~ C2 dt^3 for the symmetric step. Halving dt must shrink the
  // symmetric step's infidelity by ~8x (vs ~4x for first order).
  const std::size_t n = 2;
  pauli::PauliSum h(n);
  h.add({0.9, 0.0}, pauli::PauliString::from_string("ZZ"));
  h.add({0.6, 0.0}, pauli::PauliString::from_string("XI"));
  h.add({-0.4, 0.0}, pauli::PauliString::from_string("IY"));
  const auto error_of = [&](double dt, bool second) {
    const auto res = core::compile_trotter_step(n, h, dt);
    const auto step = second ? core::second_order_step(n, res.ordered_blocks)
                             : res.step;
    sim::StateVector approx(n);
    approx.apply_gate(circuit::Gate::h(0));
    approx.apply_gate(circuit::Gate::ry(1, 0.7));
    sim::StateVector exact = approx;
    approx.apply_circuit(step);
    // Near-exact reference: 2000 fine substeps.
    for (int s = 0; s < 2000; ++s)
      for (const auto& t : h.terms())
        exact.apply_pauli_exp(t.string, 2.0 * t.coefficient.real() * dt / 2000);
    return 1.0 - std::abs(exact.inner(approx));
  };
  const double e1a = error_of(0.4, false), e1b = error_of(0.2, false);
  const double e2a = error_of(0.4, true), e2b = error_of(0.2, true);
  // Second order is uniformly better and scales faster.
  EXPECT_LT(e2a, e1a);
  EXPECT_LT(e2b, e1b);
  EXPECT_GT(e1a / e1b, 3.0);   // ~ dt^2 -> factor ~4
  EXPECT_LT(e1a / e1b, 16.0);
  EXPECT_GT(e2a / e2b, 6.0);   // ~ dt^3 -> factor ~8
}

// ------------------------------------------------------------ preparation

TEST(Preparation, CompressedHartreeFockState) {
  // Bosonic term on pairs (0,1) and (4,5); 4 electrons occupy modes 0..3.
  const std::vector<fermion::ExcitationTerm> terms = {
      fermion::ExcitationTerm::make_double(4, 5, 0, 1)};
  core::CompileOptions opt;
  const auto res = core::compile_vqe(6, terms, opt);
  const auto prep = res.preparation(4);
  sim::StateVector sv(6);
  sv.apply_circuit(prep);
  // Compressed rep: pair (0,1) occupied -> qubit0 = 1, qubit1 parked 0;
  // modes 2,3 occupied normally; pair (4,5) empty.
  // Expected basis state: bits {0, 2, 3} = index 0b001101.
  EXPECT_NEAR(std::abs(sv.amplitude(0b001101)), 1.0, 1e-12);
}

TEST(Preparation, NoCompressionPlainHartreeFock) {
  const std::vector<fermion::ExcitationTerm> terms = {
      fermion::ExcitationTerm::make_double(4, 6, 0, 2)};
  core::CompileOptions opt;
  opt.compression = core::CompressionMode::kNone;
  const auto res = core::compile_vqe(8, terms, opt);
  const auto prep = res.preparation(4);
  sim::StateVector sv(8);
  sv.apply_circuit(prep);
  EXPECT_NEAR(std::abs(sv.amplitude(0b00001111)), 1.0, 1e-12);
}

}  // namespace
}  // namespace femto
