// Integration tests for the compiler pipelines (paper Fig. 2).
//
// Anchors:
//  - a single fermionic double excitation compiles to 13 CNOTs (the known
//    optimum of [8]) under advanced sorting with JW;
//  - a compressible hybrid double costs 7, a bosonic double costs 2;
//  - compiled circuits are unitarily equivalent to the exact product of
//    generator exponentials (JW, no compression), or to its U_Gamma
//    conjugation (advanced transform);
//  - the advanced pipeline never loses to the baseline on the model count.
#include <gtest/gtest.h>

#include "core/compiler.hpp"
#include "common/rng.hpp"
#include "sim/statevector.hpp"

namespace femto::core {
namespace {

using fermion::ExcitationTerm;

[[nodiscard]] CompileOptions fast_options() {
  CompileOptions opt;
  opt.sa_options.steps = 400;
  opt.pso_options.iterations = 30;
  opt.pso_options.particles = 12;
  opt.gtsp_options.generations = 120;
  opt.coloring_orders = 16;
  return opt;
}

TEST(Compiler, FermionicDoubleCosts13) {
  // A double excitation whose JW strings have weight 4 (adjacent orbitals,
  // empty Z-strings) compiles to the known 13-CNOT optimum of [8]:
  // 8 strings x 6 CNOTs - 7 interfaces x 5 savings = 13.
  const std::vector<ExcitationTerm> terms = {
      ExcitationTerm::make_double(4, 5, 0, 1)};
  CompileOptions opt = fast_options();
  opt.transform = TransformKind::kJordanWigner;
  opt.compression = CompressionMode::kNone;  // force the fermionic path
  const CompileResult res = compile_vqe(8, terms, opt);
  EXPECT_EQ(res.model_cnots, 13);
  EXPECT_EQ(res.emitted_cnots, 13);
  // With Z-strings (orbital gaps) the cost grows by 2 per crossed mode:
  // supports {0, Z1, 2, 4, Z5, 6} -> 8 x 10 - 7 x 9 = 17.
  const std::vector<ExcitationTerm> gapped = {
      ExcitationTerm::make_double(4, 6, 0, 2)};
  const CompileResult res2 = compile_vqe(8, gapped, opt);
  EXPECT_EQ(res2.model_cnots, 17);
}

TEST(Compiler, BosonicDoubleCosts2) {
  const std::vector<ExcitationTerm> terms = {
      ExcitationTerm::make_double(4, 5, 0, 1)};
  CompileOptions opt = fast_options();
  opt.transform = TransformKind::kJordanWigner;
  const CompileResult res = compile_vqe(6, terms, opt);
  EXPECT_EQ(res.model_cnots, 2);
  EXPECT_EQ(res.emitted_cnots, 2);
}

TEST(Compiler, HybridDoubleCosts7) {
  // Creation pair (2,3), annihilation on adjacent modes 0 and 5 -> after
  // compression the operator is weight-3 strings; the paper's count is 7.
  const std::vector<ExcitationTerm> terms = {
      ExcitationTerm::make_double(2, 3, 4, 5)};
  // (4,5) is also a spin pair -> that's bosonic; use (0, 5) instead:
  const std::vector<ExcitationTerm> hybrid_terms = {
      ExcitationTerm::make_double(2, 3, 0, 5)};
  ASSERT_EQ(hybrid_terms[0].classification(),
            fermion::ExcitationClass::kHybrid);
  CompileOptions opt = fast_options();
  opt.transform = TransformKind::kJordanWigner;
  const CompileResult res = compile_vqe(6, hybrid_terms, opt);
  // sigma+_2 (x) c_0 c_5: strings span {2, 0, 1..4 Z-string...}; with the
  // pair (2,3) compressed the Z over (2,3) drops; weight-4 strings give
  // 4 blocks * 6 - 3 * interfaces... the paper's 7 applies to adjacent
  // annihilation; here we simply require the advanced count to beat naive.
  EXPECT_LE(res.model_cnots, 16);
  (void)terms;
}

TEST(Compiler, HybridAdjacentAnnihilationCosts7) {
  // The Fig. 3(a) shape: pair (2,3) compressed, annihilation on adjacent
  // modes (4, 6)? Adjacent *JW-wise* means indices differing by 1 with no
  // Z-string: use a 8-mode system with term a+_4 a+_5 a_0 a_6 reversed...
  // Simplest faithful instance: creation pair (0,1), annihilation (2, 3) is
  // bosonic; so take creation pair (0,1), annihilation (2, 5): Z-string over
  // 3,4 remains -> not the 7-count case. Use annihilation (4,5)? bosonic.
  // The true 7-CNOT case needs annihilation indices adjacent with the
  // in-between Z removed by compression: a+_2 a+_3 a_4 a_6 with pair (4,5)?
  // not a pair. Take a+_0 a+_1 a_3 a_4? (3,4) not a spin pair but adjacent:
  // Z-string between 3 and 4 is empty -> weight-3 strings after compressing
  // (0,1):
  const std::vector<ExcitationTerm> terms = {
      ExcitationTerm::make_double(0, 1, 3, 4)};
  ASSERT_EQ(terms[0].classification(), fermion::ExcitationClass::kHybrid);
  CompileOptions opt = fast_options();
  opt.transform = TransformKind::kJordanWigner;
  const CompileResult res = compile_vqe(6, terms, opt);
  EXPECT_EQ(res.model_cnots, 7);
  EXPECT_EQ(res.emitted_cnots, 7);
}

TEST(Compiler, CircuitMatchesExactEvolutionJwNoCompression) {
  // Multi-term circuit vs exact generator exponentials, random parameters.
  const std::vector<ExcitationTerm> terms = {
      ExcitationTerm::make_double(4, 6, 0, 2),
      ExcitationTerm::make_double(5, 7, 1, 3),
      ExcitationTerm::single(6, 2),
  };
  CompileOptions opt = fast_options();
  opt.transform = TransformKind::kJordanWigner;
  opt.compression = CompressionMode::kNone;
  opt.sorting = SortingMode::kBaseline;  // keeps term blocks contiguous
  const CompileResult res = compile_vqe(8, terms, opt);
  Rng rng(7);
  std::vector<double> theta;
  for (std::size_t k = 0; k < terms.size(); ++k)
    theta.push_back(rng.uniform(-0.8, 0.8));
  // Exact: apply generators in res.term_order with parameters by position.
  sim::StateVector expect = sim::StateVector::basis_state(8, 0b00001111);
  for (std::size_t k = 0; k < res.ordered_generators.size(); ++k)
    for (const auto& t : res.ordered_generators[k].terms())
      expect.apply_pauli_exp(t.string, -2.0 * t.coefficient.imag() * theta[k]);
  // Circuit path.
  sim::StateVector actual = sim::StateVector::basis_state(8, 0b00001111);
  actual.apply_circuit(res.circuit, theta);
  const double overlap = std::abs(expect.inner(actual));
  EXPECT_NEAR(overlap, 1.0, 1e-9);
}

TEST(Compiler, CircuitMatchesConjugatedEvolutionAdvancedTransform) {
  // With Gamma != I (no compression), the circuit must equal
  // U_Gamma (exact JW evolution) U_Gamma^dag acting on the encoded state.
  const std::vector<ExcitationTerm> terms = {
      ExcitationTerm::make_double(4, 6, 0, 2),
      ExcitationTerm::make_double(4, 7, 1, 2),
  };
  CompileOptions opt = fast_options();
  opt.transform = TransformKind::kAdvanced;
  opt.compression = CompressionMode::kNone;
  // Baseline sorting keeps each term's (mutually commuting) strings
  // contiguous, so the circuit equals the conjugated product of term
  // exponentials exactly. (Advanced sorting interleaves strings across
  // terms -- a different, equally valid ansatz; covered by the single-term
  // and JW tests.)
  opt.sorting = SortingMode::kBaseline;
  const CompileResult res = compile_vqe(8, terms, opt);
  const auto network = gf2::synthesize_pmh(res.gamma);
  Rng rng(11);
  std::vector<double> theta = {rng.uniform(-1, 1), rng.uniform(-1, 1)};

  // Exact JW evolution from |HF> = modes {0,1,2} occupied... use 0b0111.
  sim::StateVector expect = sim::StateVector::basis_state(8, 0b0111);
  for (std::size_t k = 0; k < res.ordered_generators.size(); ++k)
    for (const auto& t : res.ordered_generators[k].terms())
      expect.apply_pauli_exp(t.string, -2.0 * t.coefficient.imag() * theta[k]);
  // Then encode: |psi_enc> = U_Gamma |psi_JW>.
  for (const auto& g : network) expect.apply_cnot(g.control, g.target);

  // Circuit path from the encoded reference U_Gamma|0b0111>.
  sim::StateVector actual = sim::StateVector::basis_state(8, 0b0111);
  for (const auto& g : network) actual.apply_cnot(g.control, g.target);
  actual.apply_circuit(res.circuit, theta);

  EXPECT_NEAR(std::abs(expect.inner(actual)), 1.0, 1e-9);
}

TEST(Compiler, SingleTermAdvancedSortingExactUnitary) {
  // Strings within one excitation term commute, so any GTSP order of them
  // implements exactly exp(theta (T - T+)).
  const std::vector<ExcitationTerm> terms = {
      ExcitationTerm::make_double(4, 6, 0, 2)};
  CompileOptions opt = fast_options();
  opt.transform = TransformKind::kJordanWigner;
  opt.compression = CompressionMode::kNone;
  const CompileResult res = compile_vqe(8, terms, opt);
  const std::vector<double> theta{0.377};
  sim::StateVector expect = sim::StateVector::basis_state(8, 0b00000101);
  for (const auto& t : res.ordered_generators[0].terms())
    expect.apply_pauli_exp(t.string, -2.0 * t.coefficient.imag() * theta[0]);
  sim::StateVector actual = sim::StateVector::basis_state(8, 0b00000101);
  actual.apply_circuit(res.circuit, theta);
  EXPECT_NEAR(std::abs(expect.inner(actual)), 1.0, 1e-9);
}

TEST(Compiler, AdvancedNeverLosesToBaselineOnModelCount) {
  // A mixed term set exercising all classes.
  const std::vector<ExcitationTerm> terms = {
      ExcitationTerm::make_double(6, 7, 0, 1),   // bosonic
      ExcitationTerm::make_double(6, 7, 0, 3),   // hybrid
      ExcitationTerm::make_double(8, 9, 2, 3),   // bosonic
      ExcitationTerm::make_double(4, 9, 0, 2),   // fermionic
      ExcitationTerm::make_double(5, 8, 1, 3),   // fermionic
  };
  CompileOptions adv = fast_options();
  const CompileResult res_adv = compile_vqe(10, terms, adv);

  CompileOptions base = fast_options();
  base.transform = TransformKind::kJordanWigner;
  base.sorting = SortingMode::kBaseline;
  base.compression = CompressionMode::kBosonicOnly;
  const CompileResult res_base = compile_vqe(10, terms, base);

  EXPECT_LE(res_adv.model_cnots, res_base.model_cnots);
  EXPECT_GT(res_adv.model_cnots, 0);
}

TEST(Compiler, OrderedGeneratorsFollowPlanOrder) {
  const std::vector<ExcitationTerm> terms = {
      ExcitationTerm::make_double(4, 9, 0, 2),  // fermionic
      ExcitationTerm::make_double(6, 7, 0, 1),  // bosonic -> applied first
  };
  const CompileResult res = compile_vqe(10, terms, fast_options());
  ASSERT_EQ(res.term_order.size(), 2u);
  EXPECT_EQ(res.term_order[0], 1u);  // bosonic first
  EXPECT_EQ(res.term_order[1], 0u);
  EXPECT_EQ(res.ordered_generators.size(), 2u);
}

TEST(Compiler, DecompressionCountedWhenFermionicTouchesPair) {
  const std::vector<ExcitationTerm> terms = {
      ExcitationTerm::make_double(6, 7, 0, 1),  // bosonic: pairs (6,7),(0,1)
      ExcitationTerm::make_double(6, 8, 0, 2),  // fermionic touches 6 and 0
  };
  const CompileResult res = compile_vqe(10, terms, fast_options());
  EXPECT_EQ(res.decompression_cnots, 2);
  // Model total includes the decompression CNOTs.
  int seg_total = 0;
  for (const auto& s : res.segments) seg_total += s.model_cnots;
  EXPECT_EQ(res.model_cnots, seg_total + 2);
}

TEST(Compiler, TransformKindsAllProduceValidCounts) {
  const std::vector<ExcitationTerm> terms = {
      ExcitationTerm::make_double(4, 6, 0, 2),
      ExcitationTerm::make_double(5, 7, 1, 3),
      ExcitationTerm::make_double(4, 7, 0, 3),
  };
  for (TransformKind kind :
       {TransformKind::kJordanWigner, TransformKind::kBravyiKitaev,
        TransformKind::kBaselineGT, TransformKind::kAdvanced}) {
    CompileOptions opt = fast_options();
    opt.transform = kind;
    opt.compression = CompressionMode::kNone;
    const CompileResult res = compile_vqe(8, terms, opt);
    EXPECT_GT(res.model_cnots, 0);
    EXPECT_GE(res.emitted_cnots, res.model_cnots);
  }
}

}  // namespace
}  // namespace femto::core
