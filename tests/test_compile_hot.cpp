// Property tests for the compile hot-path rewrites: every fast path must be
// BIT-IDENTICAL to its reference implementation --
//  * word-parallel interface_saving / best_shared_target_saving vs the
//    scalar per-site omega sums,
//  * table-driven fast_term_cost vs detail::fast_term_cost_reference,
//  * incremental GammaObjective apply/undo vs full recomputation
//    (fermionic_fast_cost) over random elementary-move sequences,
//  * anneal_gamma_fast vs the generic simulated-annealing driver on the
//    same RNG stream,
//  * the dense GTSP GA vs the preserved lazy reference solver.
#include <gtest/gtest.h>

#include <vector>

#include "core/compiler.hpp"
#include "transform/linear_encoding.hpp"

namespace femto {
namespace {

using pauli::Letter;

/// Random non-identity Pauli string on n qubits.
pauli::PauliString random_string(std::size_t n, Rng& rng) {
  pauli::PauliString p(n);
  while (p.weight() == 0) {
    for (std::size_t q = 0; q < n; ++q) {
      constexpr Letter letters[4] = {Letter::I, Letter::X, Letter::Y,
                                     Letter::Z};
      p.set_letter(q, letters[rng.index(4)]);
    }
  }
  return p;
}

std::vector<synth::RotationBlock> random_blocks(std::size_t n, std::size_t m,
                                                Rng& rng) {
  std::vector<synth::RotationBlock> blocks;
  for (std::size_t k = 0; k < m; ++k) {
    synth::RotationBlock b;
    b.string = random_string(n, rng);
    b.target = b.string.support().lowest_set();
    b.angle_coeff = 1.0;
    b.param = static_cast<int>(k);
    blocks.push_back(std::move(b));
  }
  return blocks;
}

/// Scalar reference of the default-model interface saving (the per-site
/// omega sum of Sec. III-B, exactly as the seed code computed it).
int interface_saving_scalar(const pauli::PauliString& p1, std::size_t t1,
                            const pauli::PauliString& p2, std::size_t t2) {
  if (t1 != t2) return 0;
  const bool good =
      synth::target_collision_good(p1.letter(t1), p2.letter(t1));
  int saving = 0;
  for (std::size_t q = 0; q < p1.num_qubits(); ++q) {
    if (q == t1) continue;
    const Letter a = p1.letter(q);
    const Letter b = p2.letter(q);
    if (a == Letter::I || b == Letter::I) continue;
    saving += (good && a == b) ? 2 : 1;
  }
  return saving;
}

TEST(InterfaceSaving, WordParallelMatchesScalarOnRandomPairs) {
  Rng rng(101);
  for (int rep = 0; rep < 400; ++rep) {
    const std::size_t n = 2 + rng.index(78);  // crosses the 64-bit word edge
    const pauli::PauliString p1 = random_string(n, rng);
    const pauli::PauliString p2 = random_string(n, rng);
    int best = -1;
    for (std::size_t t = 0; t < n; ++t) {
      if (p1.letter(t) == Letter::I || p2.letter(t) == Letter::I) continue;
      const int scalar = interface_saving_scalar(p1, t, p2, t);
      EXPECT_EQ(synth::interface_saving(p1, t, p2, t), scalar);
      best = std::max(best, scalar);
    }
    EXPECT_EQ(synth::best_shared_target_saving(p1, p2), best)
        << "n=" << n << " rep=" << rep;
  }
}

TEST(InterfaceSaving, DeviceFormsMatchScalarReference) {
  // The partner-form rewrite must agree with a direct per-site loop for the
  // XX target on every shared-target pair.
  const synth::HardwareTarget xx = synth::HardwareTarget::trapped_ion_xx();
  Rng rng(102);
  for (int rep = 0; rep < 200; ++rep) {
    const std::size_t n = 2 + rng.index(14);
    const pauli::PauliString p1 = random_string(n, rng);
    const pauli::PauliString p2 = random_string(n, rng);
    for (std::size_t t = 0; t < n; ++t) {
      if (p1.letter(t) == Letter::I || p2.letter(t) == Letter::I) continue;
      const std::size_t partner1 = synth::xx_partner(p1, t);
      const std::size_t partner2 = synth::xx_partner(p2, t);
      const bool good =
          synth::target_collision_good(p1.letter(t), p2.letter(t));
      int expected = 0;
      for (std::size_t q = 0; q < n; ++q) {
        if (q == t || q == partner1 || q == partner2) continue;
        const Letter a = p1.letter(q);
        const Letter b = p2.letter(q);
        if (a == Letter::I || b == Letter::I) continue;
        expected += (good && a == b) ? 2 : 1;
      }
      EXPECT_EQ(synth::interface_saving(p1, t, p2, t, xx), expected);
    }
  }
}

TEST(FastTermCost, TableDrivenMatchesReferenceOnAllTargets) {
  Rng rng(103);
  for (int rep = 0; rep < 150; ++rep) {
    const std::size_t n = 3 + rng.index(12);
    const std::size_t m = 1 + rng.index(9);
    const auto blocks = random_blocks(n, m, rng);
    const synth::HardwareTarget targets[3] = {
        synth::HardwareTarget::all_to_all_cnot(),
        synth::HardwareTarget::trapped_ion_xx(),
        synth::HardwareTarget::linear_nn(n)};
    // hw == nullptr (the annealing default) and all three built-ins.
    EXPECT_EQ(core::fast_term_cost(blocks),
              core::detail::fast_term_cost_reference(blocks));
    for (const auto& hw : targets) {
      const int reference = core::detail::fast_term_cost_reference(blocks, &hw);
      EXPECT_EQ(core::fast_term_cost(blocks, &hw), reference);
      synth::StringCostCache cache(hw);
      EXPECT_EQ(core::fast_term_cost(blocks, &hw, &cache), reference);
      // Cache hits must return the same values.
      EXPECT_EQ(core::fast_term_cost(blocks, &hw, &cache), reference);
    }
  }
}

TEST(StringCostCache, MemoizesExactly) {
  Rng rng(104);
  const synth::HardwareTarget targets[2] = {
      synth::HardwareTarget::trapped_ion_xx(),
      synth::HardwareTarget::linear_nn(10)};
  for (const auto& hw : targets) {
    synth::StringCostCache cache(hw);
    for (int rep = 0; rep < 200; ++rep) {
      const pauli::PauliString p = random_string(10, rng);
      int cheapest = std::numeric_limits<int>::max();
      for (std::size_t t = 0; t < 10; ++t) {
        if (p.letter(t) == Letter::I) continue;
        const int direct = synth::string_cost(p, t, hw);
        EXPECT_EQ(cache.cost(p, t), direct);
        EXPECT_EQ(cache.cost(p, t), direct);  // hit path
        cheapest = std::min(cheapest, direct);
      }
      EXPECT_EQ(cache.min_cost(p), cheapest);
    }
  }
}

/// Random double-excitation term set on n modes (n even), the Hamiltonian
/// shape the Gamma searches run on.
std::vector<fermion::ExcitationTerm> random_terms(std::size_t n,
                                                  std::size_t count,
                                                  Rng& rng) {
  std::vector<fermion::ExcitationTerm> terms;
  while (terms.size() < count) {
    const std::size_t p = rng.index(n), q = rng.index(n);
    const std::size_t r = rng.index(n), s = rng.index(n);
    if (p == q || r == s) continue;
    terms.push_back(fermion::ExcitationTerm::make_double(p, q, r, s));
  }
  return terms;
}

std::vector<std::vector<synth::RotationBlock>> jw_term_blocks(
    std::size_t n, const std::vector<fermion::ExcitationTerm>& terms) {
  std::vector<std::vector<synth::RotationBlock>> out;
  int param = 0;
  for (const auto& t : terms)
    out.push_back(core::blocks_from_generator(
        transform::jw_map(n, t.generator()), param++));
  return out;
}

TEST(GammaObjective, IncrementalMatchesFullRecomputeUnderRandomMoves) {
  Rng rng(105);
  const synth::HardwareTarget linear8 = synth::HardwareTarget::linear_nn(8);
  for (int rep = 0; rep < 10; ++rep) {
    const std::size_t n = 8;
    const auto terms = random_terms(n, 4 + rng.index(4), rng);
    const auto term_blocks = jw_term_blocks(n, terms);
    const auto blocks = core::discover_blocks(n, terms, {});
    std::vector<std::size_t> movable;
    for (std::size_t b = 0; b < blocks.size(); ++b)
      if (blocks[b].size() >= 2) movable.push_back(b);
    if (movable.empty()) continue;

    const synth::HardwareTarget* hws[2] = {nullptr, &linear8};
    for (const synth::HardwareTarget* hw : hws) {
      const synth::HardwareTarget cache_target =
          hw != nullptr ? *hw : synth::HardwareTarget::all_to_all_cnot();
      synth::StringCostCache cache(cache_target);
      core::GammaObjective objective(n, term_blocks, hw,
                                     hw != nullptr ? &cache : nullptr);
      objective.reset(gf2::Matrix::identity(n));
      gf2::Matrix gamma = gf2::Matrix::identity(n);
      EXPECT_EQ(objective.energy(),
                core::fermionic_fast_cost(gamma, term_blocks, hw));
      for (int move = 0; move < 60; ++move) {
        const auto& block = blocks[movable[rng.index(movable.size())]];
        const std::size_t src = block[rng.index(block.size())];
        std::size_t dst = block[rng.index(block.size())];
        while (dst == src) dst = block[rng.index(block.size())];
        objective.apply_move(src, dst);
        if (rng.bernoulli(0.3)) {
          // Rejected proposal: undo must restore state and energy exactly.
          objective.undo_move();
        } else {
          gamma.add_row(src, dst);
        }
        ASSERT_TRUE(objective.gamma() == gamma);
        ASSERT_EQ(objective.energy(),
                  core::fermionic_fast_cost(gamma, term_blocks, hw))
            << "rep=" << rep << " move=" << move
            << " device=" << (hw != nullptr);
        // The maintained inverse-transpose must stay exact.
        ASSERT_TRUE(objective.inverse_transpose() ==
                    gamma.inverse()->transpose());
      }
    }
  }
}

TEST(AnnealGammaFast, BitIdenticalToGenericSimulatedAnnealing) {
  Rng build_rng(106);
  for (int rep = 0; rep < 6; ++rep) {
    const std::size_t n = 8;
    const auto terms = random_terms(n, 5, build_rng);
    const auto term_blocks = jw_term_blocks(n, terms);
    const auto blocks = core::discover_blocks(n, terms, {});
    const opt::SaOptions options{2.0, 0.05, 300, rep % 2 == 0 ? 0 : 50};

    Rng generic_rng(500 + rep);
    const core::GammaState generic = core::anneal_gamma(
        n, blocks,
        [&](const gf2::Matrix& g) {
          return core::fermionic_fast_cost(g, term_blocks);
        },
        generic_rng, options);

    Rng fast_rng(500 + rep);
    const core::GammaState fast = core::anneal_gamma_fast(
        n, blocks, term_blocks, nullptr, nullptr, fast_rng, options);

    EXPECT_TRUE(fast.gamma == generic.gamma) << "rep " << rep;
    EXPECT_EQ(fast.blocks, generic.blocks);
    // Both Rngs must have consumed the identical stream.
    EXPECT_EQ(generic_rng.index(1u << 30), fast_rng.index(1u << 30));
  }
}

/// Random GTSP instance with a pure tabulated weight.
opt::GtspInstance random_gtsp(std::size_t clusters, std::size_t max_size,
                              Rng& rng, std::vector<double>& table) {
  opt::GtspInstance inst;
  int next = 0;
  for (std::size_t c = 0; c < clusters; ++c) {
    std::vector<int> cluster;
    const std::size_t size = 1 + rng.index(max_size);
    for (std::size_t v = 0; v < size; ++v) cluster.push_back(next++);
    inst.clusters.push_back(std::move(cluster));
  }
  const std::size_t stride = static_cast<std::size_t>(next);
  table.resize(stride * stride);
  for (double& v : table) v = rng.uniform(-2.0, 8.0);
  inst.weight = [&table, stride](int a, int b) {
    return table[static_cast<std::size_t>(a) * stride +
                 static_cast<std::size_t>(b)];
  };
  return inst;
}

TEST(DenseGtsp, GaBitIdenticalToLazyReference) {
  Rng build_rng(107);
  for (int rep = 0; rep < 12; ++rep) {
    std::vector<double> table;
    const auto inst =
        random_gtsp(1 + build_rng.index(20), 3, build_rng, table);
    const opt::GtspOptions options{.population = 16,
                                   .generations = 40,
                                   .tournament = 3,
                                   .mutation_rate = 0.4,
                                   .stagnation_limit = 25};
    Rng ref_rng(700 + rep), dense_rng(700 + rep);
    const opt::GtspSolution reference =
        opt::detail::solve_gtsp_ga_reference(inst, ref_rng, options);
    const opt::GtspSolution dense =
        opt::solve_gtsp_ga(inst, dense_rng, options);
    EXPECT_EQ(dense.cluster_order, reference.cluster_order) << rep;
    EXPECT_EQ(dense.vertex_choice, reference.vertex_choice) << rep;
    EXPECT_EQ(dense.value, reference.value) << rep;
    EXPECT_EQ(ref_rng.index(1u << 30), dense_rng.index(1u << 30)) << rep;
  }
}

TEST(DenseGtsp, RestartsShareOneMatrixAndMatchSerial) {
  Rng build_rng(108);
  std::vector<double> table;
  const auto inst = random_gtsp(10, 3, build_rng, table);
  // Count weight-function invocations: the restart API must materialize
  // exactly once regardless of restart count.
  std::size_t calls = 0;
  opt::GtspInstance counting = inst;
  const auto base = inst.weight;
  counting.weight = [&calls, base](int a, int b) {
    ++calls;
    return base(a, b);
  };
  const opt::GtspSolution multi =
      opt::solve_gtsp_ga_restarts(6, 42, counting, {});
  std::size_t cross_cluster_pairs = 0;
  for (const auto& ca : inst.clusters)
    for (const auto& cb : inst.clusters)
      if (&ca != &cb) cross_cluster_pairs += ca.size() * cb.size();
  EXPECT_EQ(calls, cross_cluster_pairs);

  // And the winner equals the best serial run over the derived streams.
  opt::GtspSolution best;
  double best_cost = 0;
  for (std::size_t r = 0; r < 6; ++r) {
    Rng rng(opt::restart_seed(42, r));
    opt::GtspSolution sol = opt::solve_gtsp_ga(inst, rng, {});
    if (r == 0 || -sol.value < best_cost) {
      best_cost = -sol.value;
      best = std::move(sol);
    }
  }
  EXPECT_EQ(multi.cluster_order, best.cluster_order);
  EXPECT_EQ(multi.vertex_choice, best.vertex_choice);
  EXPECT_EQ(multi.value, best.value);
}

TEST(HeldKarp, PullDpMatchesBruteForceOnSmallTerms) {
  Rng rng(109);
  for (int rep = 0; rep < 40; ++rep) {
    const std::size_t n = 4 + rng.index(6);
    const std::size_t m = 2 + rng.index(4);  // brute force m! orders
    auto blocks = random_blocks(n, m, rng);
    // Shared target 0: force support there (interface_saving requires the
    // target to sit inside both strings' support, as sort_baseline
    // guarantees via common_targets).
    const std::size_t target = 0;
    for (auto& b : blocks) {
      if (b.string.letter(0) == Letter::I) b.string.set_letter(0, Letter::X);
      b.target = 0;
    }
    const auto res = core::detail::held_karp_order(blocks, target);
    // Brute force the maximum path savings.
    std::vector<std::size_t> perm(m);
    for (std::size_t i = 0; i < m; ++i) perm[i] = i;
    int best = -1;
    do {
      int savings = 0;
      for (std::size_t k = 0; k + 1 < m; ++k)
        if (!blocks[perm[k]].string.same_letters(blocks[perm[k + 1]].string))
          savings += synth::interface_saving(blocks[perm[k]].string, target,
                                             blocks[perm[k + 1]].string,
                                             target);
      best = std::max(best, savings);
    } while (std::next_permutation(perm.begin(), perm.end()));
    EXPECT_EQ(res.savings, best) << "rep " << rep;
    // The returned order must realize the claimed savings.
    int realized = 0;
    for (std::size_t k = 0; k + 1 < m; ++k)
      if (!blocks[res.order[k]].string.same_letters(
              blocks[res.order[k + 1]].string))
        realized += synth::interface_saving(blocks[res.order[k]].string,
                                            target,
                                            blocks[res.order[k + 1]].string,
                                            target);
    EXPECT_EQ(realized, best) << "rep " << rep;
  }
}

}  // namespace
}  // namespace femto
