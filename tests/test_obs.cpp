// Contract tests for the observability layer (src/obs/):
//  * Span nesting: child events are time-contained in their parents and
//    timestamps are relative to the tracer's epoch.
//  * Concurrent emission: many threads emitting spans through one tracer
//    produce exactly the expected event count and a parseable Chrome
//    trace-event JSON (no torn events) -- exercised through the SAME
//    ThreadPool the compile pipeline uses.
//  * Zero-cost disabled path: with no active tracer, constructing spans and
//    attaching args performs ZERO heap allocations, pinned by overriding
//    the global allocator in this binary.
//  * Bit-identity: compiling with tracing on vs off yields byte-identical
//    canonical responses (tracing observes the pipeline, never steers it).
//  * Metrics registry: counters/gauges/histograms with stable names,
//    pointer-stable references, and sane percentile estimates.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "core/pipeline.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/json.hpp"
#include "service/protocol.hpp"

// ---- allocation-counting global allocator (whole test binary) -------------
// Counts every operator-new in the process; the disabled-path test asserts a
// ZERO delta across span construction, which is the obs/trace.hpp contract
// ("disabled cost is one relaxed atomic load").
//
// GCC's -Wmismatched-new-delete pairs our malloc-backed replacement
// operator new with the free() inside our replacement operator delete at
// inlined STL call sites and mis-reports a mismatch; the replacement pair
// is consistent (new -> malloc, delete -> free) by construction.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace femto {
namespace {

/// Parses a tracer's JSON export and returns the traceEvents array, failing
/// the test on any parse error (a torn or mis-escaped event).
service::json::Value parse_events(const obs::Tracer& tracer) {
  std::string err;
  const auto parsed = service::json::parse(tracer.to_json(), &err);
  EXPECT_TRUE(parsed.has_value()) << "trace JSON did not parse: " << err;
  if (!parsed.has_value()) return service::json::Value::array();
  const service::json::Value* events = parsed->find("traceEvents");
  EXPECT_NE(events, nullptr);
  EXPECT_TRUE(events != nullptr && events->is_array());
  return events != nullptr ? *events : service::json::Value::array();
}

double number_field(const service::json::Value& obj, const char* key) {
  const service::json::Value* v = obj.find(key);
  EXPECT_NE(v, nullptr) << "missing field " << key;
  return v != nullptr ? std::atof(v->as_string().c_str()) : -1.0;
}

TEST(Trace, NestedSpansAreTimeContained) {
  obs::Tracer tracer;
  obs::Tracer::set_active(&tracer);
  {
    obs::Span outer("outer", "test");
    outer.arg("level", 0);
    {
      obs::Span inner("inner", "test");
      inner.arg("level", 1);
    }
  }
  obs::Tracer::set_active(nullptr);

  ASSERT_EQ(tracer.event_count(), 2u);
  const service::json::Value events = parse_events(tracer);
  ASSERT_EQ(events.items().size(), 2u);
  // Spans close inner-first, so the child is emitted before the parent.
  const service::json::Value& inner = events.items()[0];
  const service::json::Value& outer = events.items()[1];
  EXPECT_EQ(inner.find("name")->as_string(), "inner");
  EXPECT_EQ(outer.find("name")->as_string(), "outer");
  const double inner_ts = number_field(inner, "ts");
  const double inner_dur = number_field(inner, "dur");
  const double outer_ts = number_field(outer, "ts");
  const double outer_dur = number_field(outer, "dur");
  EXPECT_GE(outer_ts, 0.0);  // epoch defaults to construction time
  EXPECT_GE(inner_ts, outer_ts);
  EXPECT_LE(inner_ts + inner_dur, outer_ts + outer_dur);
  EXPECT_GE(inner_dur, 0.0);
}

TEST(Trace, ArgsSurviveJsonEscaping) {
  obs::Tracer tracer;
  obs::Tracer::set_active(&tracer);
  {
    obs::Span span("escape \"me\"\n", "test\tcat");
    span.arg("quote\"key", "va\\lue\nwith\tcontrol\x01chars");
    span.arg("count", std::int64_t{-42});
  }
  obs::Tracer::set_active(nullptr);

  const service::json::Value events = parse_events(tracer);
  ASSERT_EQ(events.items().size(), 1u);
  const service::json::Value& e = events.items()[0];
  EXPECT_EQ(e.find("name")->as_string(), "escape \"me\"\n");
  const service::json::Value* args = e.find("args");
  ASSERT_NE(args, nullptr);
  const service::json::Value* sval = args->find("quote\"key");
  ASSERT_NE(sval, nullptr);
  EXPECT_EQ(sval->as_string(), "va\\lue\nwith\tcontrol\x01chars");
  EXPECT_EQ(number_field(*args, "count"), -42.0);
}

TEST(Trace, ConcurrentEmissionFromPoolIsNotTorn) {
  constexpr std::size_t kJobs = 64;
  constexpr std::size_t kSpansPerJob = 8;
  obs::Tracer tracer;
  obs::Tracer::set_active(&tracer);
  {
    ThreadPool pool(4);
    pool.parallel_for(kJobs, [&](std::size_t i) {
      for (std::size_t k = 0; k < kSpansPerJob; ++k) {
        obs::Span span("job", "test");
        span.arg("job", i);
        span.arg("k", k);
      }
    });
    // parallel_for returning is the quiescent point: all span-emitting
    // work has completed before the pool is torn down and we export.
  }
  obs::Tracer::set_active(nullptr);

  ASSERT_EQ(tracer.event_count(), kJobs * kSpansPerJob);
  const service::json::Value events = parse_events(tracer);
  ASSERT_EQ(events.items().size(), kJobs * kSpansPerJob);
  // Every (job, k) pair appears exactly once: no lost or duplicated events.
  std::vector<int> seen(kJobs * kSpansPerJob, 0);
  for (const service::json::Value& e : events.items()) {
    EXPECT_EQ(e.find("name")->as_string(), "job");
    const service::json::Value* args = e.find("args");
    ASSERT_NE(args, nullptr);
    const auto job = static_cast<std::size_t>(number_field(*args, "job"));
    const auto k = static_cast<std::size_t>(number_field(*args, "k"));
    ASSERT_LT(job, kJobs);
    ASSERT_LT(k, kSpansPerJob);
    ++seen[job * kSpansPerJob + k];
  }
  for (const int count : seen) EXPECT_EQ(count, 1);
}

TEST(Trace, DisabledPathAllocatesNothing) {
  ASSERT_EQ(obs::Tracer::active(), nullptr);
  // Warm up any lazy statics outside the measured window.
  { obs::Span warmup("warmup", "test"); }

  const std::uint64_t before = g_allocations.load();
  for (int i = 0; i < 1000; ++i) {
    obs::Span span("hot_path", "test");
    span.arg("iteration", i);
    span.arg("label", "should not be stored");
    ASSERT_FALSE(span.enabled());
  }
  const std::uint64_t delta = g_allocations.load() - before;
  EXPECT_EQ(delta, 0u) << "disabled spans performed " << delta
                       << " heap allocations";
}

TEST(Trace, EmitCompleteUsesExplicitTimestampsAgainstEpoch) {
  using clock = obs::Tracer::clock;
  const clock::time_point epoch = clock::now();
  const clock::time_point start = epoch + std::chrono::microseconds(250);
  const clock::time_point end = start + std::chrono::microseconds(750);
  obs::Tracer tracer(epoch);
  obs::TraceEvent e;
  e.name = "queue_wait";
  e.cat = "service";
  tracer.emit_complete(std::move(e), start, end);
  const service::json::Value events = parse_events(tracer);
  ASSERT_EQ(events.items().size(), 1u);
  EXPECT_EQ(number_field(events.items()[0], "ts"), 250.0);
  EXPECT_EQ(number_field(events.items()[0], "dur"), 750.0);
}

/// The smoke-scale compile scenario: small enough for a unit test, rich
/// enough to cross every instrumented layer (transform, solvers, synthesis
/// cache, verification).
core::CompileRequest traced_request() {
  core::CompileScenario s;
  s.name = "obs/uccsd4";
  s.num_qubits = 4;
  s.terms = {fermion::ExcitationTerm::make_double(2, 3, 0, 1),
             fermion::ExcitationTerm::single(2, 0),
             fermion::ExcitationTerm::single(3, 1)};
  s.options.transform = core::TransformKind::kAdvanced;
  s.options.sorting = core::SortingMode::kAdvanced;
  s.options.compression = core::CompressionMode::kHybrid;
  s.options.coloring_orders = 8;
  s.options.sa_options.steps = 200;
  s.options.gtsp_options.population = 8;
  s.options.gtsp_options.generations = 20;
  s.options.emit_circuit = true;
  core::CompileRequest request;
  request.scenarios = {std::move(s)};
  request.restarts = 2;
  request.seed = 20230306;
  request.verify = true;
  return request;
}

std::string canonical_compile(const core::CompileRequest& request) {
  core::CompilePipeline pipeline({.workers = 2});
  return service::protocol::encode_response(
             service::protocol::summarize(pipeline.compile(request),
                                          /*include_circuits=*/true))
      .encode();
}

TEST(Trace, PipelineCompileIsBitIdenticalTracedVsUntraced) {
  const core::CompileRequest request = traced_request();
  const std::string untraced = canonical_compile(request);

  obs::Tracer tracer;
  obs::Tracer::set_active(&tracer);
  const std::string traced = canonical_compile(request);
  obs::Tracer::set_active(nullptr);

  EXPECT_EQ(traced, untraced);
  EXPECT_GT(tracer.event_count(), 0u);

  // The trace must contain the per-stage and per-restart pipeline spans.
  const service::json::Value events = parse_events(tracer);
  std::vector<std::string> names;
  for (const service::json::Value& e : events.items())
    names.push_back(e.find("name")->as_string());
  for (const char* expected : {"compile_request", "restart", "verify",
                               "stage_plan", "stage_transform", "stage_emit"})
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "trace missing span " << expected;
}

TEST(Metrics, CountersGaugesAndStableReferences) {
  obs::Registry registry;
  obs::Counter& c = registry.counter("test.counter");
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  // find-or-create must hand back the SAME object (instrumentation sites
  // cache the reference in function-local statics).
  EXPECT_EQ(&registry.counter("test.counter"), &c);

  obs::Gauge& g = registry.gauge("test.gauge");
  g.set(7);
  g.add(-3);
  EXPECT_EQ(g.value(), 4);

  const obs::MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].first, "test.counter");
  EXPECT_EQ(snap.counters[0].second, 42u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].second, 4);
}

TEST(Metrics, HistogramPercentilesBracketRecordedValues) {
  obs::Registry registry;
  obs::Histogram& h = registry.histogram("test.latency_s");
  // 90 fast requests at ~1ms, 10 slow at ~100ms: p50 must sit near the
  // fast mode, p99 near the slow mode. Buckets are power-of-two in
  // microseconds, so assert bracketing rather than exact values.
  for (int i = 0; i < 90; ++i) h.record(0.001);
  for (int i = 0; i < 10; ++i) h.record(0.1);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_NEAR(h.sum_s(), 90 * 0.001 + 10 * 0.1, 1e-9);
  const double p50 = h.quantile_s(0.50);
  const double p99 = h.quantile_s(0.99);
  EXPECT_GE(p50, 0.001);
  EXPECT_LT(p50, 0.01);    // fast mode, one bucket of slack
  EXPECT_GE(p99, 0.1);     // slow mode
  EXPECT_LT(p99, 1.0);
  EXPECT_LE(p50, p99);
}

TEST(Metrics, GlobalRegistryCarriesPipelineCounters) {
  obs::Counter& compiles = obs::registry().counter("pipeline.compiles");
  const std::uint64_t before = compiles.value();
  core::CompilePipeline pipeline({.workers = 1});
  (void)pipeline.compile(traced_request());
  EXPECT_GT(compiles.value(), before);
}

}  // namespace
}  // namespace femto
