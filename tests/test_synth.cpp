// Tests for Pauli-exponential synthesis and the CNOT cost model.
//
// Anchors from the paper:
//  - Fig. 4(a): P1 = XXXY, P2 = XXYX with shared target q3 -> interface
//    leaves 1 CNOT (saving 5); with target q0 -> 2 CNOTs (saving 4).
//  - A fermionic double excitation compiles to 13 CNOTs, a compressible
//    hybrid to 7, a bosonic pair to 2 (tested in higher-level suites).
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "sim/statevector.hpp"
#include "sim/unitary.hpp"
#include "synth/cost_model.hpp"
#include "synth/pauli_exponential.hpp"
#include "synth/su2.hpp"

namespace femto::synth {
namespace {

using circuit::QuantumCircuit;
using pauli::PauliString;

[[nodiscard]] RotationBlock block(const std::string& letters, std::size_t t,
                                  double angle, int param = -1) {
  RotationBlock b;
  b.string = PauliString::from_string(letters);
  b.target = t;
  b.angle_coeff = angle;
  b.param = param;
  return b;
}

/// Reference circuit: apply each block as a direct Pauli exponential.
[[nodiscard]] sim::StateVector reference_state(
    std::size_t n, const std::vector<RotationBlock>& seq, std::size_t input) {
  sim::StateVector sv = sim::StateVector::basis_state(n, input);
  for (const RotationBlock& b : seq)
    sv.apply_pauli_exp(b.string, b.angle_coeff);
  return sv;
}

void expect_sequence_correct(std::size_t n,
                             const std::vector<RotationBlock>& seq,
                             MergePolicy policy) {
  const QuantumCircuit c = synthesize_sequence(n, seq, policy);
  // Compare action on every basis state, up to one global phase fixed by the
  // first nonzero amplitude.
  Complex phase{0, 0};
  for (std::size_t input = 0; input < (std::size_t{1} << n); ++input) {
    sim::StateVector actual = sim::StateVector::basis_state(n, input);
    actual.apply_circuit(c);
    const sim::StateVector expect = reference_state(n, seq, input);
    for (std::size_t i = 0; i < actual.dim(); ++i) {
      const Complex e = expect.amplitude(i);
      const Complex a = actual.amplitude(i);
      if (std::abs(phase) < 0.5) {
        if (std::abs(e) > 1e-9 && std::abs(a) > 1e-9) phase = e / a;
      }
      if (std::abs(phase) > 0.5) {
        EXPECT_NEAR(std::abs(e - phase * a), 0.0, 1e-9)
            << "input " << input << " amp " << i;
      } else {
        EXPECT_NEAR(std::abs(e) - std::abs(a), 0.0, 1e-9);
      }
    }
  }
}

TEST(CostModel, SingleStringCost) {
  EXPECT_EQ(string_cost(PauliString::from_string("XXXY")), 6);
  EXPECT_EQ(string_cost(PauliString::from_string("IZII")), 0);
  EXPECT_EQ(string_cost(PauliString::from_string("XIIZ")), 2);
}

TEST(CostModel, Fig4InterfaceSavings) {
  const PauliString p1 = PauliString::from_string("XXXY");
  const PauliString p2 = PauliString::from_string("XXYX");
  // Target q3: target collision (Y,X) good; controls (X,X),(X,X),(X,Y):
  // omega = 2,2,1 -> saving 5, interface CNOTs = 6 - 5 = 1.
  EXPECT_EQ(interface_saving(p1, 3, p2, 3), 5);
  // Target q0: target collision (X,X) good; controls (X,X),(X,Y),(Y,X):
  // omega = 2,1,1 -> saving 4, interface CNOTs = 6 - 4 = 2.
  EXPECT_EQ(interface_saving(p1, 0, p2, 0), 4);
  // Different targets never save.
  EXPECT_EQ(interface_saving(p1, 0, p2, 3), 0);
}

TEST(CostModel, BadTargetCollisionCapsAtOne) {
  // Target letters (Z, X): bad collision, every shared control saves 1.
  const PauliString p1 = PauliString::from_string("XXZ");
  const PauliString p2 = PauliString::from_string("XXX");
  EXPECT_EQ(interface_saving(p1, 2, p2, 2), 2);  // two shared controls, 1 each
}

TEST(CostModel, IdentityOverlapSavesNothing) {
  const PauliString p1 = PauliString::from_string("XIIY");
  const PauliString p2 = PauliString::from_string("IXYI");
  // Shared support only at the (equal) target? Here targets differ in
  // support; choose target 3 vs 2 -> different targets, zero.
  EXPECT_EQ(interface_saving(p1, 3, p2, 2), 0);
}

TEST(Synthesis, SingleBlockMatchesDirectExponential) {
  Rng rng(13);
  for (int rep = 0; rep < 20; ++rep) {
    const std::size_t n = 4;
    PauliString p(n);
    std::size_t weight = 0;
    while (weight == 0) {
      for (std::size_t q = 0; q < n; ++q)
        p.set_letter(q, static_cast<pauli::Letter>(rng.index(4)));
      weight = p.weight();
    }
    std::vector<std::size_t> support;
    for (std::size_t q = 0; q < n; ++q)
      if (p.letter(q) != pauli::Letter::I) support.push_back(q);
    RotationBlock b;
    b.string = p;
    b.target = support[rng.index(support.size())];
    b.angle_coeff = rng.uniform(-2, 2);
    expect_sequence_correct(n, {b}, MergePolicy::kNone);
  }
}

TEST(Synthesis, Fig4SequenceCnotCounts) {
  // Model: 6 + 6 - 5 = 7 with target q3 for both strings.
  const std::vector<RotationBlock> seq3 = {block("XXXY", 3, 0.31),
                                           block("XXYX", 3, -0.57)};
  EXPECT_EQ(sequence_model_cost(seq3), 7);
  const QuantumCircuit c3 = synthesize_sequence(4, seq3);
  EXPECT_EQ(c3.cnot_count(), 7);
  expect_sequence_correct(4, seq3, MergePolicy::kMerge);

  // Model: 6 + 6 - 4 = 8 with target q0.
  const std::vector<RotationBlock> seq0 = {block("XXXY", 0, 0.31),
                                           block("XXYX", 0, -0.57)};
  EXPECT_EQ(sequence_model_cost(seq0), 8);
  const QuantumCircuit c0 = synthesize_sequence(4, seq0);
  EXPECT_EQ(c0.cnot_count(), 8);
  expect_sequence_correct(4, seq0, MergePolicy::kMerge);
}

TEST(Synthesis, MergedEqualsNaiveUnitary) {
  Rng rng(37);
  for (int rep = 0; rep < 20; ++rep) {
    const std::size_t n = 4;
    std::vector<RotationBlock> seq;
    const int blocks = 2 + static_cast<int>(rng.index(3));
    for (int k = 0; k < blocks; ++k) {
      PauliString p(n);
      std::size_t weight = 0;
      while (weight < 2) {
        for (std::size_t q = 0; q < n; ++q)
          p.set_letter(q, static_cast<pauli::Letter>(rng.index(4)));
        weight = p.weight();
      }
      std::vector<std::size_t> support;
      for (std::size_t q = 0; q < n; ++q)
        if (p.letter(q) != pauli::Letter::I) support.push_back(q);
      RotationBlock b;
      b.string = p;
      b.target = support[rng.index(support.size())];
      b.angle_coeff = rng.uniform(-2, 2);
      seq.push_back(b);
    }
    expect_sequence_correct(n, seq, MergePolicy::kMerge);
    expect_sequence_correct(n, seq, MergePolicy::kNone);
    // Merged emission never uses more entanglers than naive.
    EXPECT_LE(synthesize_sequence(n, seq, MergePolicy::kMerge).cnot_count(),
              synthesize_sequence(n, seq, MergePolicy::kNone).cnot_count());
    // And never beats the model (the model is the paper's lower envelope
    // for this template family).
    EXPECT_GE(synthesize_sequence(n, seq, MergePolicy::kMerge).cnot_count(),
              sequence_model_cost(seq));
  }
}

TEST(Synthesis, GoodTargetChainsAchieveModel) {
  // Sequences whose consecutive target collisions are all good must emit
  // exactly the model count.
  Rng rng(53);
  const std::size_t n = 5;
  for (int rep = 0; rep < 20; ++rep) {
    std::vector<RotationBlock> seq;
    const std::size_t t = rng.index(n);
    const int blocks = 2 + static_cast<int>(rng.index(4));
    for (int k = 0; k < blocks; ++k) {
      PauliString p(n);
      for (std::size_t q = 0; q < n; ++q)
        p.set_letter(q, static_cast<pauli::Letter>(rng.index(4)));
      // Force the target letter to X or Y (every {X,Y}^2 collision is good).
      p.set_letter(t, rng.bernoulli(0.5) ? pauli::Letter::X : pauli::Letter::Y);
      RotationBlock b;
      b.string = p;
      b.target = t;
      b.angle_coeff = rng.uniform(-2, 2);
      seq.push_back(b);
    }
    const QuantumCircuit c = synthesize_sequence(n, seq, MergePolicy::kMerge);
    EXPECT_EQ(c.cnot_count(), sequence_model_cost(seq));
    expect_sequence_correct(n, seq, MergePolicy::kMerge);
  }
}

TEST(Su2, EulerDecompositionReconstructs) {
  // Check U = e^{i phase} Rz(a) Rx(b) Rz(g) for all basis-change diffs.
  const pauli::Letter letters[3] = {pauli::Letter::X, pauli::Letter::Y,
                                    pauli::Letter::Z};
  for (pauli::Letter l1 : letters) {
    for (pauli::Letter l2 : letters) {
      const Mat2 diff = basis_change(l2) * basis_change(l1).adjoint();
      const EulerZXZ e = euler_zxz(diff);
      // Rebuild.
      const Complex i{0, 1};
      const Mat2 rz_a{{std::exp(-i * (e.alpha / 2)), 0, 0,
                       std::exp(i * (e.alpha / 2))}};
      const Mat2 rz_g{{std::exp(-i * (e.gamma / 2)), 0, 0,
                       std::exp(i * (e.gamma / 2))}};
      const Mat2 rx{{std::cos(e.beta / 2), -i * std::sin(e.beta / 2),
                     -i * std::sin(e.beta / 2), std::cos(e.beta / 2)}};
      Mat2 rebuilt = rz_a * rx * rz_g;
      for (auto& v : rebuilt.m) v *= std::exp(i * e.phase);
      for (int k = 0; k < 4; ++k)
        EXPECT_NEAR(std::abs(rebuilt.m[k] - diff.m[k]), 0.0, 1e-10);
      // For differing letters beta must be a Clifford angle (odd multiple
      // of pi/2) so the merged XX rotation costs exactly one CNOT.
      if (l1 != l2) {
        const double b = std::abs(std::fmod(std::abs(e.beta), M_PI));
        EXPECT_NEAR(std::min(b, M_PI - b), M_PI / 2, 1e-9);
      }
    }
  }
}

}  // namespace
}  // namespace femto::synth
