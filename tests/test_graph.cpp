// Tests for graph utilities: peeling, coloring, components.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "graph/digraph.hpp"

namespace femto::graph {
namespace {

TEST(Peel, ChainPeelsCompletely) {
  // 0 -> 1 -> 2: sink 2 first; after removal 1 becomes sink, then 0.
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const PeelResult r = peel_sinks_sources(g);
  EXPECT_TRUE(r.remainder.empty());
  // Sink rounds: {2}, then 1 is a sink... but 0 is a source in round 1 too.
  // Application safety: for every edge (a -> b), b must run before a.
  std::vector<int> pos(3, -1);
  int t = 0;
  for (std::size_t v : r.sinks) pos[v] = t++;
  for (std::size_t v : r.sources) pos[v] = t++;
  EXPECT_LT(pos[2], pos[1]);
  EXPECT_LT(pos[1], pos[0]);
}

TEST(Peel, CycleIsIrreducible) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  const PeelResult r = peel_sinks_sources(g);
  EXPECT_TRUE(r.sinks.empty());
  EXPECT_TRUE(r.sources.empty());
  EXPECT_EQ(r.remainder.size(), 3u);
}

TEST(Peel, IsolatedVertexCountsAsSink) {
  Digraph g(2);
  const PeelResult r = peel_sinks_sources(g);
  EXPECT_EQ(r.sinks.size(), 2u);
}

class PeelProperty : public ::testing::TestWithParam<int> {};

TEST_P(PeelProperty, OrderRespectsAllEdges) {
  // For random DAG-ish digraphs: every peeled vertex ordering must satisfy
  // "edge a->b means b applied before a" among peeled vertices.
  Rng rng(100 + GetParam());
  const std::size_t n = 10;
  Digraph g(n);
  for (std::size_t a = 0; a < n; ++a)
    for (std::size_t b = 0; b < n; ++b)
      if (a != b && rng.bernoulli(0.15)) g.add_edge(a, b);
  const PeelResult r = peel_sinks_sources(g);
  std::vector<int> pos(n, -1);
  int t = 0;
  for (std::size_t v : r.sinks) pos[v] = t++;
  const int sink_end = t;
  t = static_cast<int>(n) - static_cast<int>(r.sources.size());
  for (std::size_t v : r.sources) pos[v] = t++;
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      if (!g.has_edge(a, b) || pos[a] < 0 || pos[b] < 0) continue;
      // Sinks/sources only: remainder handled by coloring elsewhere.
      EXPECT_LT(pos[b], pos[a]) << "edge " << a << "->" << b;
    }
  }
  (void)sink_end;
}

INSTANTIATE_TEST_SUITE_P(Seeds, PeelProperty, ::testing::Range(0, 8));

TEST(Coloring, PathGraphTwoColors) {
  UndirectedGraph g(5);
  for (std::size_t i = 0; i + 1 < 5; ++i) g.add_edge(i, i + 1);
  Rng rng(7);
  const Coloring c = greedy_color_randomized(g, rng, 32);
  EXPECT_TRUE(coloring_is_proper(g, c));
  EXPECT_EQ(c.num_colors, 2);
  EXPECT_EQ(c.largest_class().size(), 3u);
}

TEST(Coloring, CompleteGraphNeedsNColors) {
  const std::size_t n = 5;
  UndirectedGraph g(n);
  for (std::size_t a = 0; a < n; ++a)
    for (std::size_t b = a + 1; b < n; ++b) g.add_edge(a, b);
  Rng rng(9);
  const Coloring c = greedy_color_randomized(g, rng, 8);
  EXPECT_TRUE(coloring_is_proper(g, c));
  EXPECT_EQ(c.num_colors, 5);
}

class ColoringProperty : public ::testing::TestWithParam<int> {};

TEST_P(ColoringProperty, AlwaysProperOnRandomGraphs) {
  Rng rng(11 + GetParam());
  const std::size_t n = 12;
  UndirectedGraph g(n);
  for (std::size_t a = 0; a < n; ++a)
    for (std::size_t b = a + 1; b < n; ++b)
      if (rng.bernoulli(0.3)) g.add_edge(a, b);
  const Coloring c = greedy_color_randomized(g, rng, 16);
  EXPECT_TRUE(coloring_is_proper(g, c));
  EXPECT_GE(c.num_colors, 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ColoringProperty, ::testing::Range(0, 10));

TEST(Coloring, MoreOrdersNeverWorse) {
  // Randomized greedy with more orders finds <= colors of fewer orders
  // (same rng family, statistically monotone; we check a fixed instance).
  Rng rng_a(3), rng_b(3);
  const std::size_t n = 14;
  UndirectedGraph g(n);
  Rng build(77);
  for (std::size_t a = 0; a < n; ++a)
    for (std::size_t b = a + 1; b < n; ++b)
      if (build.bernoulli(0.4)) g.add_edge(a, b);
  const Coloring few = greedy_color_randomized(g, rng_a, 1);
  const Coloring many = greedy_color_randomized(g, rng_b, 128);
  EXPECT_LE(many.num_colors, few.num_colors);
}

TEST(PairComponents, DiscoversBlocks) {
  // Paper appendix C example: creation pairs {8,9} and {5,6}, annihilation
  // cluster {1,2,3} (via pairs (1,2) and (2,3)).
  const auto comps = pair_components(
      10, {{8, 9}, {5, 6}, {1, 2}, {2, 3}});
  ASSERT_EQ(comps.size(), 3u);
  // Components hold sorted indices.
  bool saw_89 = false, saw_56 = false, saw_123 = false;
  for (const auto& c : comps) {
    if (c == std::vector<std::size_t>{8, 9}) saw_89 = true;
    if (c == std::vector<std::size_t>{5, 6}) saw_56 = true;
    if (c == std::vector<std::size_t>{1, 2, 3}) saw_123 = true;
  }
  EXPECT_TRUE(saw_89);
  EXPECT_TRUE(saw_56);
  EXPECT_TRUE(saw_123);
}

}  // namespace
}  // namespace femto::graph
