// Tests for Pauli strings, sums and Clifford conjugation, cross-checked
// against dense 2^n x 2^n matrices built from the letter definitions.
#include <gtest/gtest.h>

#include <complex>
#include <vector>

#include "common/rng.hpp"
#include "pauli/clifford_map.hpp"
#include "pauli/pauli_string.hpp"
#include "pauli/pauli_sum.hpp"

namespace femto::pauli {
namespace {

using Dense = std::vector<std::vector<Complex>>;

[[nodiscard]] Dense dense_mul(const Dense& a, const Dense& b) {
  const std::size_t dim = a.size();
  Dense out(dim, std::vector<Complex>(dim, {0, 0}));
  for (std::size_t i = 0; i < dim; ++i)
    for (std::size_t k = 0; k < dim; ++k) {
      if (std::abs(a[i][k]) < 1e-15) continue;
      for (std::size_t j = 0; j < dim; ++j) out[i][j] += a[i][k] * b[k][j];
    }
  return out;
}

/// Dense matrix of a PauliString from the letter definitions, including the
/// letter-form sign.
[[nodiscard]] Dense dense_of(const PauliString& p) {
  const std::size_t n = p.num_qubits();
  const std::size_t dim = std::size_t{1} << n;
  Dense m(dim, std::vector<Complex>(dim, {0, 0}));
  for (std::size_t col = 0; col < dim; ++col) {
    std::size_t row = col;
    Complex val = p.sign();
    for (std::size_t q = 0; q < n; ++q) {
      const bool bit = (col >> q) & 1;
      switch (p.letter(q)) {
        case Letter::I: break;
        case Letter::X: row ^= std::size_t{1} << q; break;
        case Letter::Y:
          row ^= std::size_t{1} << q;
          val *= bit ? Complex(0, -1) : Complex(0, 1);
          break;
        case Letter::Z:
          if (bit) val = -val;
          break;
      }
    }
    m[row][col] += val;
  }
  return m;
}

[[nodiscard]] double dense_dist(const Dense& a, const Dense& b) {
  double d = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    for (std::size_t j = 0; j < a.size(); ++j)
      d = std::max(d, std::abs(a[i][j] - b[i][j]));
  return d;
}

[[nodiscard]] PauliString random_string(std::size_t n, Rng& rng) {
  PauliString p(n);
  for (std::size_t q = 0; q < n; ++q)
    p.set_letter(q, static_cast<Letter>(rng.index(4)));
  if (rng.bernoulli(0.5)) p.set_phase_exponent(p.phase_exponent() + 2);
  return p;
}

TEST(PauliString, FromStringRoundTrip) {
  const PauliString p = PauliString::from_string("XYIZ");
  EXPECT_EQ(p.letter(0), Letter::X);
  EXPECT_EQ(p.letter(1), Letter::Y);
  EXPECT_EQ(p.letter(2), Letter::I);
  EXPECT_EQ(p.letter(3), Letter::Z);
  EXPECT_EQ(p.to_string(), "+XYIZ");
  EXPECT_EQ(p.weight(), 3u);
  EXPECT_TRUE(p.is_hermitian());

  const PauliString neg = PauliString::from_string("-XX");
  EXPECT_EQ(neg.sign(), Complex(-1.0, 0.0));
  EXPECT_EQ(neg.to_string(), "-XX");
}

TEST(PauliString, SingleLetterPhases) {
  // Y = i XZ: check the stored phase keeps the letter-form sign +1.
  const PauliString y = PauliString::single(1, 0, Letter::Y);
  EXPECT_EQ(y.sign(), Complex(1.0, 0.0));
  EXPECT_TRUE(y.is_hermitian());
}

TEST(PauliString, KnownProducts) {
  const PauliString x = PauliString::from_string("X");
  const PauliString y = PauliString::from_string("Y");
  const PauliString z = PauliString::from_string("Z");
  // XY = iZ
  EXPECT_TRUE((x * y).same_letters(z));
  EXPECT_EQ((x * y).sign(), Complex(0.0, 1.0));
  // YX = -iZ
  EXPECT_EQ((y * x).sign(), Complex(0.0, -1.0));
  // ZX = iY
  EXPECT_TRUE((z * x).same_letters(y));
  EXPECT_EQ((z * x).sign(), Complex(0.0, 1.0));
  // XX = I
  EXPECT_TRUE((x * x).is_identity_letters());
  EXPECT_EQ((x * x).sign(), Complex(1.0, 0.0));
}

class PauliAlgebra : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PauliAlgebra, ProductMatchesDense) {
  const std::size_t n = GetParam();
  Rng rng(7 + n);
  for (int rep = 0; rep < 30; ++rep) {
    const PauliString a = random_string(n, rng);
    const PauliString b = random_string(n, rng);
    const Dense expect = dense_mul(dense_of(a), dense_of(b));
    EXPECT_LT(dense_dist(dense_of(a * b), expect), 1e-12);
  }
}

TEST_P(PauliAlgebra, CommutationMatchesDense) {
  const std::size_t n = GetParam();
  Rng rng(11 + n);
  for (int rep = 0; rep < 30; ++rep) {
    const PauliString a = random_string(n, rng);
    const PauliString b = random_string(n, rng);
    const Dense ab = dense_mul(dense_of(a), dense_of(b));
    const Dense ba = dense_mul(dense_of(b), dense_of(a));
    const bool dense_commute = dense_dist(ab, ba) < 1e-12;
    EXPECT_EQ(a.commutes_with(b), dense_commute);
  }
}

TEST_P(PauliAlgebra, AdjointMatchesDense) {
  const std::size_t n = GetParam();
  Rng rng(13 + n);
  for (int rep = 0; rep < 20; ++rep) {
    const PauliString a = random_string(n, rng);
    Dense conj_t = dense_of(a);
    // conjugate transpose
    Dense expect(conj_t.size(), std::vector<Complex>(conj_t.size()));
    for (std::size_t i = 0; i < conj_t.size(); ++i)
      for (std::size_t j = 0; j < conj_t.size(); ++j)
        expect[i][j] = std::conj(conj_t[j][i]);
    EXPECT_LT(dense_dist(dense_of(a.adjoint()), expect), 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PauliAlgebra, ::testing::Values(1, 2, 3, 4));

TEST(CliffordMap, CnotConjugationKnownCases) {
  // CNOT (X @ I) CNOT = X @ X
  const PauliString xi = PauliString::from_string("XI");
  EXPECT_EQ(CliffordMap::conj_cnot(xi, 0, 1).to_string(), "+XX");
  // CNOT (I @ Z) CNOT = Z @ Z
  const PauliString iz = PauliString::from_string("IZ");
  EXPECT_EQ(CliffordMap::conj_cnot(iz, 0, 1).to_string(), "+ZZ");
  // CNOT (Y @ Y) CNOT = -X @ Z
  const PauliString yy = PauliString::from_string("YY");
  EXPECT_EQ(CliffordMap::conj_cnot(yy, 0, 1).to_string(), "-XZ");
  // Z on control and X on target are fixed.
  EXPECT_EQ(CliffordMap::conj_cnot(PauliString::from_string("ZI"), 0, 1)
                .to_string(),
            "+ZI");
  EXPECT_EQ(CliffordMap::conj_cnot(PauliString::from_string("IX"), 0, 1)
                .to_string(),
            "+IX");
}

TEST(CliffordMap, HAndSConjugation) {
  EXPECT_EQ(CliffordMap::conj_h(PauliString::from_string("X"), 0).to_string(),
            "+Z");
  EXPECT_EQ(CliffordMap::conj_h(PauliString::from_string("Y"), 0).to_string(),
            "-Y");
  EXPECT_EQ(CliffordMap::conj_s(PauliString::from_string("X"), 0).to_string(),
            "+Y");
  EXPECT_EQ(CliffordMap::conj_s(PauliString::from_string("Y"), 0).to_string(),
            "-X");
}

TEST(CliffordMap, NetworkConjugationPreservesCommutationAndWeightBound) {
  Rng rng(101);
  const std::size_t n = 6;
  const gf2::Matrix m = gf2::Matrix::random_invertible(n, rng);
  const auto gates = gf2::synthesize_pmh(m);
  const CliffordMap map = CliffordMap::from_cnot_network(n, gates);
  for (int rep = 0; rep < 30; ++rep) {
    const PauliString a = random_string(n, rng);
    const PauliString b = random_string(n, rng);
    EXPECT_EQ(map.apply(a).commutes_with(map.apply(b)), a.commutes_with(b));
    // Conjugation is a homomorphism: map(a*b) = map(a)*map(b).
    EXPECT_EQ(map.apply(a * b), map.apply(a) * map.apply(b));
  }
}

TEST(CliffordMap, MatrixFormMatchesGateForm) {
  // x' = A x, z' = A^-T z must agree with gate-wise conjugation on supports.
  Rng rng(202);
  const std::size_t n = 7;
  const gf2::Matrix a = gf2::Matrix::random_invertible(n, rng);
  const auto gates = gf2::synthesize_pmh(a);
  const CliffordMap map = CliffordMap::from_cnot_network(n, gates);
  const gf2::Matrix a_inv_t = a.inverse()->transpose();
  for (int rep = 0; rep < 40; ++rep) {
    const PauliString p = random_string(n, rng);
    const PauliString img = map.apply(p);
    EXPECT_EQ(img.x(), a.apply(p.x()));
    EXPECT_EQ(img.z(), a_inv_t.apply(p.z()));
  }
}

TEST(PauliSum, MergesEqualLetterTerms) {
  PauliSum sum(2);
  sum.add({1.0, 0.0}, PauliString::from_string("XY"));
  sum.add({2.0, 0.0}, PauliString::from_string("XY"));
  sum.add({0.5, 0.0}, PauliString::from_string("-XY"));  // = -0.5 XY
  ASSERT_EQ(sum.size(), 1u);
  EXPECT_NEAR(sum.terms()[0].coefficient.real(), 2.5, 1e-12);
}

TEST(PauliSum, ProductDistributes) {
  // (X + Z)(X - Z) = XX - XZ + ZX - ZZ = I - XZ + ZX - I = ... check dense.
  PauliSum a(1);
  a.add({1, 0}, PauliString::from_string("X"));
  a.add({1, 0}, PauliString::from_string("Z"));
  PauliSum b(1);
  b.add({1, 0}, PauliString::from_string("X"));
  b.add({-1, 0}, PauliString::from_string("Z"));
  const PauliSum prod = a * b;
  // X*X = I, X*(-Z) = -XZ = iY? XZ = -iY so -XZ = iY; Z*X = iY; Z*(-Z) = -I.
  // Sum: (I - I) + (iY + iY) = 2iY.
  ASSERT_EQ(prod.size(), 1u);
  EXPECT_TRUE(prod.terms()[0].string.same_letters(
      PauliString::from_string("Y")));
  EXPECT_NEAR(std::abs(prod.terms()[0].coefficient - Complex(0, 2.0)), 0.0,
              1e-12);
}

TEST(PauliSum, AdjointConjugatesCoefficients) {
  PauliSum a(2);
  a.add({0.0, 1.0}, PauliString::from_string("XY"));
  const PauliSum ad = a.adjoint();
  ASSERT_EQ(ad.size(), 1u);
  EXPECT_NEAR(std::abs(ad.terms()[0].coefficient - Complex(0.0, -1.0)), 0.0,
              1e-12);
}

TEST(PauliSum, PruneDropsZeros) {
  PauliSum a(1);
  a.add({1.0, 0.0}, PauliString::from_string("X"));
  a.add({-1.0, 0.0}, PauliString::from_string("X"));
  a.add({1.0, 0.0}, PauliString::from_string("Z"));
  a.prune();
  EXPECT_EQ(a.size(), 1u);
}

// --- randomized conjugation properties, verified against dense matrices ---

[[nodiscard]] Dense dense_adjoint(const Dense& m) {
  const std::size_t dim = m.size();
  Dense out(dim, std::vector<Complex>(dim, {0, 0}));
  for (std::size_t i = 0; i < dim; ++i)
    for (std::size_t j = 0; j < dim; ++j) out[i][j] = std::conj(m[j][i]);
  return out;
}

[[nodiscard]] Dense dense_h_gate(std::size_t n, std::size_t q) {
  const std::size_t dim = std::size_t{1} << n;
  const std::size_t bit = std::size_t{1} << q;
  const double s = 1.0 / std::sqrt(2.0);
  Dense m(dim, std::vector<Complex>(dim, {0, 0}));
  for (std::size_t col = 0; col < dim; ++col) {
    m[col & ~bit][col] = s;
    m[col | bit][col] = (col & bit) ? -s : s;
  }
  return m;
}

[[nodiscard]] Dense dense_s_gate(std::size_t n, std::size_t q) {
  const std::size_t dim = std::size_t{1} << n;
  const std::size_t bit = std::size_t{1} << q;
  Dense m(dim, std::vector<Complex>(dim, {0, 0}));
  for (std::size_t col = 0; col < dim; ++col)
    m[col][col] = (col & bit) ? Complex(0, 1) : Complex(1, 0);
  return m;
}

[[nodiscard]] Dense dense_cnot_gate(std::size_t n, std::size_t c,
                                    std::size_t t) {
  const std::size_t dim = std::size_t{1} << n;
  const std::size_t cb = std::size_t{1} << c;
  const std::size_t tb = std::size_t{1} << t;
  Dense m(dim, std::vector<Complex>(dim, {0, 0}));
  for (std::size_t col = 0; col < dim; ++col)
    m[(col & cb) ? (col ^ tb) : col][col] = 1.0;
  return m;
}

class CliffordConjugation : public ::testing::TestWithParam<std::size_t> {};

/// Per-gate property: for random strings and random CNOT/H/S choices,
/// conj_*(P) must equal U P U^dag as dense matrices -- this pins the exact
/// phase (the -X@Z class of sign cases), not just the letters.
TEST_P(CliffordConjugation, SingleGateMatchesDense) {
  const std::size_t n = GetParam();
  Rng rng(0x777 + n);
  PauliString p = random_string(n, rng);
  for (int step = 0; step < 40; ++step) {
    const int which = static_cast<int>(rng.index(3));
    const std::size_t q = rng.index(n);
    Dense u;
    PauliString conj(n);
    if (which == 0 && n >= 2) {
      std::size_t t = rng.index(n);
      while (t == q) t = rng.index(n);
      u = dense_cnot_gate(n, q, t);
      conj = CliffordMap::conj_cnot(p, q, t);
    } else if (which == 1) {
      u = dense_h_gate(n, q);
      conj = CliffordMap::conj_h(p, q);
    } else {
      u = dense_s_gate(n, q);
      conj = CliffordMap::conj_s(p, q);
    }
    const Dense expected = dense_mul(dense_mul(u, dense_of(p)), dense_adjoint(u));
    EXPECT_LT(dense_dist(dense_of(conj), expected), 1e-12)
        << "step " << step << ": " << p.to_string() << " -> "
        << conj.to_string();
    p = conj;  // walk a random Clifford orbit
  }
}

/// Composed property: folding gates into a CliffordMap via then_* must
/// agree with conjugation by the dense product of the whole circuit.
TEST_P(CliffordConjugation, ComposedMapMatchesDenseCircuit) {
  const std::size_t n = GetParam();
  Rng rng(0x999 + n);
  CliffordMap map(n);
  const std::size_t dim = std::size_t{1} << n;
  Dense u(dim, std::vector<Complex>(dim, {0, 0}));
  for (std::size_t i = 0; i < dim; ++i) u[i][i] = 1.0;
  for (int step = 0; step < 12; ++step) {
    const int which = static_cast<int>(rng.index(3));
    const std::size_t q = rng.index(n);
    if (which == 0 && n >= 2) {
      std::size_t t = rng.index(n);
      while (t == q) t = rng.index(n);
      map.then_cnot(q, t);
      u = dense_mul(dense_cnot_gate(n, q, t), u);
    } else if (which == 1) {
      map.then_hadamard(q);
      u = dense_mul(dense_h_gate(n, q), u);
    } else {
      map.then_phase(q);
      u = dense_mul(dense_s_gate(n, q), u);
    }
  }
  const Dense u_dag = dense_adjoint(u);
  for (int rep = 0; rep < 10; ++rep) {
    const PauliString p = random_string(n, rng);
    const Dense expected = dense_mul(dense_mul(u, dense_of(p)), u_dag);
    EXPECT_LT(dense_dist(dense_of(map.apply(p)), expected), 1e-12)
        << p.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CliffordConjugation,
                         ::testing::Values(1, 2, 3, 4));

TEST(CliffordConjugation, MinusXZSignFamily) {
  // The sign cases called out in pauli_string.hpp: CNOT (Y@Y) CNOT = -X@Z,
  // and its orbit under swapping letters / roles.
  EXPECT_EQ(CliffordMap::conj_cnot(PauliString::from_string("YY"), 0, 1)
                .to_string(),
            "-XZ");
  EXPECT_EQ(CliffordMap::conj_cnot(PauliString::from_string("YX"), 0, 1)
                .to_string(),
            "+YI");
  EXPECT_EQ(CliffordMap::conj_cnot(PauliString::from_string("XY"), 0, 1)
                .to_string(),
            "+YZ");
  EXPECT_EQ(CliffordMap::conj_cnot(PauliString::from_string("ZZ"), 0, 1)
                .to_string(),
            "+IZ");
  // S Y S^dag = -X on either of two qubits, phases independent.
  EXPECT_EQ(CliffordMap::conj_s(PauliString::from_string("YY"), 0).to_string(),
            "-XY");
  EXPECT_EQ(CliffordMap::conj_s(PauliString::from_string("-YY"), 1).to_string(),
            "+YX");
}

}  // namespace
}  // namespace femto::pauli
