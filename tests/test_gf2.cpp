// Unit and property tests for the GF(2) linear algebra substrate.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "gf2/bitvec.hpp"
#include "gf2/linear_synthesis.hpp"
#include "gf2/matrix.hpp"

namespace femto::gf2 {
namespace {

TEST(BitVec, SetGetFlip) {
  BitVec v(70);
  EXPECT_EQ(v.size(), 70u);
  EXPECT_FALSE(v.any());
  v.set(0, true);
  v.set(69, true);
  EXPECT_TRUE(v.get(0));
  EXPECT_TRUE(v.get(69));
  EXPECT_FALSE(v.get(35));
  EXPECT_EQ(v.popcount(), 2u);
  v.flip(69);
  EXPECT_FALSE(v.get(69));
  EXPECT_EQ(v.popcount(), 1u);
}

TEST(BitVec, XorAndDot) {
  const BitVec a = BitVec::from_string("1101");
  const BitVec b = BitVec::from_string("1011");
  EXPECT_EQ((a ^ b).to_string(), "0110");
  EXPECT_EQ((a & b).to_string(), "1001");
  EXPECT_EQ((a | b).to_string(), "1111");
  // <a,b> = 1*1 + 1*0 + 0*1 + 1*1 = 0 mod 2
  EXPECT_FALSE(a.dot(b));
  const BitVec c = BitVec::from_string("1000");
  EXPECT_TRUE(a.dot(c));
}

// Property test for the tail invariant documented in bitvec.hpp: every bit
// at position >= size() in the final storage word stays zero through every
// mutating operation. The word-reading reduction kernels (popcount, parity,
// dot, the SIMD paths in wordops.hpp, hash_value) depend on this to scan
// whole words without masking the tail.
TEST(BitVec, TailPaddingInvariant) {
  Rng rng(20230807);
  const auto padding_clear = [](const BitVec& v) {
    if (v.size() % 64 == 0) return true;  // no padding bits exist
    const std::uint64_t tail = v.word_data()[v.word_count() - 1];
    return (tail >> (v.size() % 64)) == 0;
  };
  for (const std::size_t n : {1u, 63u, 64u, 65u, 127u, 129u, 255u, 257u}) {
    BitVec a(n), b(n);
    ASSERT_TRUE(padding_clear(a)) << "fresh n=" << n;
    for (int step = 0; step < 200; ++step) {
      const std::size_t i = rng.index(n);
      switch (rng.index(6)) {
        case 0: a.set(i, rng.bernoulli(0.5)); break;
        case 1: a.flip(i); break;
        case 2: a.set_u(i, rng.bernoulli(0.5)); break;
        case 3: a ^= b; break;
        case 4: a |= b; break;
        case 5: a &= b; break;
      }
      b.flip_u(rng.index(n));
      ASSERT_TRUE(padding_clear(a)) << "n=" << n << " step=" << step;
      ASSERT_TRUE(padding_clear(b)) << "n=" << n << " step=" << step;
      // The invariant is exactly what lets the word-reducers skip masking:
      // a bit-by-bit recount must agree with the whole-word kernels.
      std::size_t pop = 0;
      for (std::size_t k = 0; k < n; ++k) pop += a.get(k) ? 1 : 0;
      ASSERT_EQ(a.popcount(), pop);
      ASSERT_EQ(a.parity(), (pop & 1) != 0);
    }
  }
}

TEST(BitVec, LowestSet) {
  BitVec v(130);
  EXPECT_EQ(v.lowest_set(), 130u);
  v.set(127, true);
  EXPECT_EQ(v.lowest_set(), 127u);
  v.set(3, true);
  EXPECT_EQ(v.lowest_set(), 3u);
}

TEST(Matrix, IdentityAndApply) {
  const Matrix id = Matrix::identity(5);
  const BitVec x = BitVec::from_string("10110");
  EXPECT_EQ(id.apply(x), x);
  EXPECT_TRUE(id.invertible());
  EXPECT_EQ(id.rank(), 5u);
}

TEST(Matrix, KnownInverse) {
  // [[1,1],[0,1]] is its own inverse over GF(2).
  const Matrix m = Matrix::from_rows({"11", "01"});
  const auto inv = m.inverse();
  ASSERT_TRUE(inv.has_value());
  EXPECT_EQ(*inv, m);
}

TEST(Matrix, SingularHasNoInverse) {
  const Matrix m = Matrix::from_rows({"11", "11"});
  EXPECT_FALSE(m.invertible());
  EXPECT_FALSE(m.inverse().has_value());
  EXPECT_EQ(m.rank(), 1u);
}

TEST(Matrix, PermutationMatrix) {
  const Matrix p = Matrix::permutation({2, 0, 1});
  BitVec e0(3);
  e0.set(0, true);
  const BitVec y = p.apply(e0);
  EXPECT_TRUE(y.get(2));
  EXPECT_EQ(y.popcount(), 1u);
}

TEST(Matrix, BlockDiagonalAssembly) {
  // 2x2 block [[1,1],[0,1]] on indices {1,3}, identity elsewhere.
  const Matrix block = Matrix::from_rows({"11", "01"});
  const Matrix m = Matrix::block_diagonal(4, {{1, 3}}, {block});
  EXPECT_TRUE(m.invertible());
  EXPECT_TRUE(m.get(0, 0));
  EXPECT_TRUE(m.get(2, 2));
  EXPECT_TRUE(m.get(1, 1));
  EXPECT_TRUE(m.get(1, 3));
  EXPECT_FALSE(m.get(3, 1));
  EXPECT_TRUE(m.get(3, 3));
}

class MatrixProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MatrixProperty, InverseRoundTrip) {
  const std::size_t n = GetParam();
  Rng rng(17 + n);
  for (int rep = 0; rep < 20; ++rep) {
    const Matrix m = Matrix::random_invertible(n, rng);
    const auto inv = m.inverse();
    ASSERT_TRUE(inv.has_value());
    EXPECT_EQ(m.multiply(*inv), Matrix::identity(n));
    EXPECT_EQ(inv->multiply(m), Matrix::identity(n));
  }
}

TEST_P(MatrixProperty, TransposeInvolutionAndProductRule) {
  const std::size_t n = GetParam();
  Rng rng(23 + n);
  const Matrix a = Matrix::random_invertible(n, rng);
  const Matrix b = Matrix::random_invertible(n, rng);
  EXPECT_EQ(a.transpose().transpose(), a);
  // (AB)^T = B^T A^T
  EXPECT_EQ(a.multiply(b).transpose(), b.transpose().multiply(a.transpose()));
}

TEST_P(MatrixProperty, RowOpPreservesInvertibility) {
  const std::size_t n = GetParam();
  if (n < 2) return;
  Rng rng(31 + n);
  Matrix m = Matrix::random_invertible(n, rng);
  for (int rep = 0; rep < 50; ++rep) {
    const std::size_t src = rng.index(n);
    std::size_t dst = rng.index(n);
    if (src == dst) dst = (dst + 1) % n;
    m.add_row(src, dst);
    EXPECT_TRUE(m.invertible());
  }
}

TEST_P(MatrixProperty, UpperTriangularAlwaysInvertible) {
  const std::size_t n = GetParam();
  Rng rng(41 + n);
  for (int rep = 0; rep < 10; ++rep)
    EXPECT_TRUE(Matrix::random_upper_triangular(n, rng).invertible());
}

INSTANTIATE_TEST_SUITE_P(Sizes, MatrixProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 16, 24));

class SynthesisProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SynthesisProperty, PmhRecomposesMatrix) {
  const std::size_t n = GetParam();
  Rng rng(57 + n);
  for (int rep = 0; rep < 15; ++rep) {
    const Matrix m = Matrix::random_invertible(n, rng);
    const auto gates = synthesize_pmh(m);
    EXPECT_EQ(network_matrix(n, gates), m);
  }
}

TEST_P(SynthesisProperty, GaussRecomposesMatrix) {
  const std::size_t n = GetParam();
  Rng rng(61 + n);
  const Matrix m = Matrix::random_invertible(n, rng);
  EXPECT_EQ(network_matrix(n, synthesize_gauss(m)), m);
}

TEST_P(SynthesisProperty, IdentityNeedsNoGates) {
  const std::size_t n = GetParam();
  EXPECT_TRUE(synthesize_pmh(Matrix::identity(n)).empty());
}

INSTANTIATE_TEST_SUITE_P(Sizes, SynthesisProperty,
                         ::testing::Values(1, 2, 3, 4, 6, 9, 14, 16, 20));

TEST(Synthesis, SingleCnotMatrix) {
  // x1 += x0 corresponds to the elementary matrix with m[1][0] = 1.
  Matrix m = Matrix::identity(2);
  m.set(1, 0, true);
  const auto gates = synthesize_pmh(m);
  ASSERT_EQ(gates.size(), 1u);
  EXPECT_EQ(gates[0].control, 0u);
  EXPECT_EQ(gates[0].target, 1u);
}

TEST(Synthesis, ApplyNetworkMatchesMatrixApply) {
  Rng rng(99);
  const std::size_t n = 10;
  const Matrix m = Matrix::random_invertible(n, rng);
  const auto gates = synthesize_pmh(m);
  for (int rep = 0; rep < 30; ++rep) {
    BitVec x(n);
    for (std::size_t i = 0; i < n; ++i) x.set(i, rng.bernoulli(0.5));
    EXPECT_EQ(apply_network(gates, x), m.apply(x));
  }
}

TEST_P(SynthesisProperty, InverseNetworkRoundTrip) {
  // Synthesizing M and M^-1 and applying both networks in sequence must act
  // as the identity on random vectors.
  const std::size_t n = GetParam();
  Rng rng(83 + n);
  const Matrix m = Matrix::random_invertible(n, rng);
  const auto inv = m.inverse();
  ASSERT_TRUE(inv.has_value());
  const auto fwd = synthesize_pmh(m);
  const auto bwd = synthesize_pmh(*inv);
  for (int rep = 0; rep < 20; ++rep) {
    BitVec x(n);
    for (std::size_t i = 0; i < n; ++i) x.set(i, rng.bernoulli(0.5));
    EXPECT_EQ(apply_network(bwd, apply_network(fwd, x)), x);
  }
}

TEST_P(SynthesisProperty, EverySectionSizeRecomposes) {
  // The PMH section size is a performance knob, never a correctness one:
  // all of 1..n must reproduce the matrix exactly.
  const std::size_t n = GetParam();
  Rng rng(97 + n);
  const Matrix m = Matrix::random_invertible(n, rng);
  for (std::size_t section = 1; section <= n; ++section)
    EXPECT_EQ(network_matrix(n, synthesize_pmh(m, section)), m)
        << "section " << section;
}

TEST(BitVec, Mask64PacksLowWord) {
  BitVec v(28);
  v.set(0, true);
  v.set(3, true);
  v.set(27, true);
  EXPECT_EQ(v.mask64(), (1ULL << 0) | (1ULL << 3) | (1ULL << 27));
  EXPECT_EQ(BitVec(0).mask64(), 0u);
  EXPECT_EQ(BitVec(64).mask64(), 0u);
  BitVec full = BitVec::from_string("1101");
  EXPECT_EQ(full.mask64(), 0b1011ULL);
}

}  // namespace
}  // namespace femto::gf2
