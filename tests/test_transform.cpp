// Tests for fermion-to-qubit transformations.
//
// Key invariants: the canonical anticommutation relations must hold as
// PauliSum identities for *every* encoding; spectra are encoding-invariant;
// occupation states map to the advertised basis states.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "fermion/excitation.hpp"
#include "sim/lanczos.hpp"
#include "sim/statevector.hpp"
#include "transform/linear_encoding.hpp"

namespace femto::transform {
namespace {

using fermion::FermionOperator;
using pauli::Complex;
using pauli::PauliSum;

/// ||A||: max |coefficient| of the sum.
[[nodiscard]] double max_coeff(const PauliSum& s) {
  double m = 0;
  for (const auto& t : s.terms()) m = std::max(m, std::abs(t.coefficient));
  return m;
}

TEST(JordanWigner, LadderKnownForm) {
  // a_2 on 4 modes: 0.5 ZZXI + 0.5i ZZYI
  const PauliSum a2 = jw_ladder(4, 2, false);
  ASSERT_EQ(a2.size(), 2u);
  bool saw_x = false, saw_y = false;
  for (const auto& t : a2.terms()) {
    if (t.string.same_letters(pauli::PauliString::from_string("ZZXI"))) {
      saw_x = true;
      EXPECT_NEAR(std::abs(t.coefficient - Complex(0.5, 0)), 0, 1e-12);
    }
    if (t.string.same_letters(pauli::PauliString::from_string("ZZYI"))) {
      saw_y = true;
      EXPECT_NEAR(std::abs(t.coefficient - Complex(0, 0.5)), 0, 1e-12);
    }
  }
  EXPECT_TRUE(saw_x);
  EXPECT_TRUE(saw_y);
}

class EncodingCar : public ::testing::TestWithParam<int> {
 protected:
  [[nodiscard]] static LinearEncoding make(int which, std::size_t n) {
    switch (which) {
      case 0: return LinearEncoding::jordan_wigner(n);
      case 1: return LinearEncoding::bravyi_kitaev(n);
      case 2: return LinearEncoding::parity(n);
      default: {
        Rng rng(1234);
        return LinearEncoding(gf2::Matrix::random_invertible(n, rng));
      }
    }
  }
};

TEST_P(EncodingCar, CanonicalAnticommutationRelations) {
  const std::size_t n = 5;
  const LinearEncoding enc = make(GetParam(), n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const FermionOperator ai = FermionOperator::ladder(i, false);
      const FermionOperator adj = FermionOperator::ladder(j, true);
      const FermionOperator aj = FermionOperator::ladder(j, false);
      // {a_i, a_j^dag} = delta_ij
      PauliSum anti = enc.map(ai * adj + adj * ai);
      anti.add({i == j ? -1.0 : 0.0, 0.0},
               pauli::PauliString::identity(n));
      anti.prune();
      EXPECT_LT(max_coeff(anti), 1e-12) << "i=" << i << " j=" << j;
      // {a_i, a_j} = 0
      PauliSum anti2 = enc.map(ai * aj + aj * ai);
      anti2.prune();
      EXPECT_LT(max_coeff(anti2), 1e-12);
    }
  }
}

TEST_P(EncodingCar, NumberOperatorOnEncodedBasisStates) {
  // <An| n_i |An> must equal the occupation bit n_i.
  const std::size_t n = 4;
  const LinearEncoding enc = make(GetParam(), n);
  for (std::size_t occ = 0; occ < (1u << n); ++occ) {
    gf2::BitVec occ_bits(n);
    for (std::size_t q = 0; q < n; ++q)
      occ_bits.set(q, (occ >> q) & 1);
    const gf2::BitVec encoded = enc.encode_occupation(occ_bits);
    std::size_t index = 0;
    for (std::size_t q = 0; q < n; ++q)
      if (encoded.get(q)) index |= std::size_t{1} << q;
    const sim::StateVector sv = sim::StateVector::basis_state(n, index);
    for (std::size_t i = 0; i < n; ++i) {
      const FermionOperator num =
          FermionOperator::ladder(i, true) * FermionOperator::ladder(i, false);
      const double expect = occ_bits.get(i) ? 1.0 : 0.0;
      EXPECT_NEAR(sv.expectation(enc.map(num)).real(), expect, 1e-10);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Encodings, EncodingCar, ::testing::Values(0, 1, 2, 3));

TEST(Encodings, BravyiKitaevMatrixFenwickStructure) {
  // For n=4 the BK (Fenwick) matrix rows cover ranges: {0}, {0,1}, {2},
  // {0,1,2,3}.
  const LinearEncoding bk = LinearEncoding::bravyi_kitaev(4);
  const gf2::Matrix& a = bk.matrix();
  EXPECT_EQ(a.row(0).to_string(), "1000");
  EXPECT_EQ(a.row(1).to_string(), "1100");
  EXPECT_EQ(a.row(2).to_string(), "0010");
  EXPECT_EQ(a.row(3).to_string(), "1111");
}

TEST(Encodings, ParityEncodingPrefixSums) {
  const LinearEncoding par = LinearEncoding::parity(3);
  EXPECT_EQ(par.matrix().row(0).to_string(), "100");
  EXPECT_EQ(par.matrix().row(1).to_string(), "110");
  EXPECT_EQ(par.matrix().row(2).to_string(), "111");
}

TEST(Encodings, SpectrumInvariantAcrossEncodings) {
  // A small interacting Hamiltonian: H = sum eps_i n_i + g (a0+ a1+ a2 a3 +
  // h.c.). The ground energy must be identical under JW, BK, parity, random.
  const std::size_t n = 4;
  FermionOperator h;
  const double eps[4] = {-1.0, -0.5, 0.25, 0.7};
  for (std::size_t i = 0; i < n; ++i) {
    h = h + eps[i] * (FermionOperator::ladder(i, true) *
                      FermionOperator::ladder(i, false));
  }
  const FermionOperator exc = FermionOperator::term(
      {0.35, 0.0}, {{0, true}, {1, true}, {2, false}, {3, false}});
  h = h + exc + exc.adjoint();

  Rng rng(55);
  std::vector<LinearEncoding> encodings;
  encodings.push_back(LinearEncoding::jordan_wigner(n));
  encodings.push_back(LinearEncoding::bravyi_kitaev(n));
  encodings.push_back(LinearEncoding::parity(n));
  encodings.push_back(LinearEncoding(gf2::Matrix::random_invertible(n, rng)));

  std::vector<double> energies;
  for (const auto& enc : encodings) {
    const PauliSum hq = enc.map(h);
    energies.push_back(sim::lanczos_ground_energy(hq, n).ground_energy);
  }
  for (std::size_t k = 1; k < energies.size(); ++k)
    EXPECT_NEAR(energies[k], energies[0], 1e-8);
}

TEST(Encodings, SupportFastPathMatchesClifford) {
  Rng rng(77);
  const std::size_t n = 8;
  const LinearEncoding enc(gf2::Matrix::random_invertible(n, rng));
  for (int rep = 0; rep < 40; ++rep) {
    pauli::PauliString p(n);
    for (std::size_t q = 0; q < n; ++q)
      p.set_letter(q, static_cast<pauli::Letter>(rng.index(4)));
    const pauli::PauliString exact = enc.map_string(p);
    const pauli::PauliString fast = enc.map_string_support(p);
    EXPECT_EQ(exact.x(), fast.x());
    EXPECT_EQ(exact.z(), fast.z());
  }
}

TEST(Encodings, GammaConjugationShortensExampleString) {
  // Paper appendix C: Gamma with 2x2 blocks [[1,0],[1,1]] on qubits (0,1)
  // and (4,5) maps XXIIXY to a shorter string (weight 4 -> weight 3 example:
  // XIIIYZ up to sign conventions; we check the weight drops).
  gf2::Matrix gamma = gf2::Matrix::identity(6);
  gamma.set(1, 0, true);
  gamma.set(5, 4, true);
  const LinearEncoding enc(gamma);
  const pauli::PauliString p = pauli::PauliString::from_string("XXIIXY");
  const pauli::PauliString img = enc.map_string(p);
  EXPECT_LT(img.weight(), p.weight());
}

}  // namespace
}  // namespace femto::transform
