// Tests for the hybrid-encoding pipeline (paper Sec. III-A + Appendix A).
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "encoding/compressed_ops.hpp"
#include "encoding/hybrid_plan.hpp"
#include "sim/statevector.hpp"
#include "transform/linear_encoding.hpp"

namespace femto::encoding {
namespace {

using fermion::ExcitationTerm;

/// The nine hybrid terms of the paper's Appendix A, converted to 0-indexed
/// spin orbitals (paper is 1-indexed with pairs (odd p, p+1); here pairs are
/// (even p, p+1)).
[[nodiscard]] std::vector<ExcitationTerm> appendix_terms() {
  return {
      ExcitationTerm::make_double(8, 11, 2, 3),    // h0 (pair 2,3)
      ExcitationTerm::make_double(10, 11, 2, 5),   // h1 (pair 10,11)
      ExcitationTerm::make_double(19, 20, 4, 5),   // h2 (pair 4,5)
      ExcitationTerm::make_double(18, 21, 4, 5),   // h3 (pair 4,5)
      ExcitationTerm::make_double(12, 15, 0, 1),   // h4 (pair 0,1)
      ExcitationTerm::make_double(10, 13, 4, 5),   // h5 (pair 4,5)
      ExcitationTerm::make_double(12, 13, 4, 7),   // h6 (pair 12,13)
      ExcitationTerm::make_double(12, 15, 6, 7),   // h7 (pair 6,7)
      ExcitationTerm::make_double(16, 17, 2, 7),   // h8 (pair 16,17)
  };
}

TEST(HybridPlan, PaperAppendixExample) {
  const auto terms = appendix_terms();
  for (const auto& t : terms)
    ASSERT_EQ(t.classification(), fermion::ExcitationClass::kHybrid)
        << t.to_string();
  Rng rng(4242);
  const HybridPlan plan = plan_hybrid_encoding(terms, rng, 64);

  // Paper: S_sink = {h2, h3}, S_source = {h4, h8}, S_color = {h0, h5, h7},
  // folded = {h1, h6}.
  auto sorted = [](std::vector<std::size_t> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  EXPECT_EQ(sorted(plan.sinks), (std::vector<std::size_t>{2, 3}));
  EXPECT_EQ(sorted(plan.sources), (std::vector<std::size_t>{4, 8}));
  EXPECT_EQ(sorted(plan.colored), (std::vector<std::size_t>{0, 5, 7}));
  EXPECT_EQ(sorted(plan.fermionic), (std::vector<std::size_t>{1, 6}));
  EXPECT_EQ(plan.chromatic_number, 2);
  EXPECT_EQ(plan.hybrid_folded, 2u);
}

TEST(HybridPlan, OrderingIsSymmetrySafe) {
  // In the final compressed order, no term may break a pair that a *later*
  // compressed term needs.
  const auto terms = appendix_terms();
  Rng rng(7);
  const HybridPlan plan = plan_hybrid_encoding(terms, rng, 64);
  const auto order = plan.compressed_order();
  for (std::size_t a = 0; a < order.size(); ++a)
    for (std::size_t b = a + 1; b < order.size(); ++b)
      EXPECT_FALSE(terms[order[a]].breaks_symmetry_of(terms[order[b]]))
          << "term " << order[a] << " breaks later term " << order[b];
}

TEST(HybridPlan, BosonicAndFermionicClassifiedOut) {
  std::vector<ExcitationTerm> terms = {
      ExcitationTerm::make_double(4, 5, 0, 1),  // bosonic
      ExcitationTerm::make_double(4, 6, 0, 2),  // fermionic
      ExcitationTerm::single(4, 0),             // single -> fermionic
      ExcitationTerm::make_double(6, 7, 0, 3),  // hybrid
  };
  Rng rng(1);
  const HybridPlan plan = plan_hybrid_encoding(terms, rng);
  EXPECT_EQ(plan.bosonic, (std::vector<std::size_t>{0}));
  EXPECT_EQ(plan.hybrid_total, 1u);
  // The lone hybrid is isolated -> a sink.
  EXPECT_EQ(plan.sinks, (std::vector<std::size_t>{3}));
  EXPECT_EQ(plan.fermionic.size(), 2u);
}

TEST(CompressedPairs, TracksPairsAndDecompression) {
  std::vector<ExcitationTerm> terms = {
      ExcitationTerm::make_double(4, 5, 0, 1),  // bosonic: pairs (4,5),(0,1)
      ExcitationTerm::make_double(6, 7, 0, 3),  // hybrid: pair (6,7), ind {0,3}
      ExcitationTerm::make_double(4, 6, 0, 2),  // fermionic touches 4
  };
  Rng rng(1);
  const HybridPlan plan = plan_hybrid_encoding(terms, rng);
  const auto pairs = compressed_pairs(terms, plan);
  // Pairs 4, 0, 6 (low indices).
  EXPECT_EQ(pairs.size(), 3u);
  const auto decomp = pairs_needing_decompression(terms, plan);
  // The fermionic term acts on 4, 6, 0, 2 individually: pairs (4,5), (6,7)
  // and (0,1) all touched.
  EXPECT_EQ(decomp.size(), 3u);
}

TEST(CompressedOps, ReduceDeletesPairZZ) {
  pauli::PauliSum sum(6);
  sum.add({1.0, 0.0}, pauli::PauliString::from_string("XZZIIY"));
  const pauli::PauliSum red = reduce_over_pairs(sum, {1 /* pair (1,2) */});
  ASSERT_EQ(red.size(), 1u);
  EXPECT_TRUE(red.terms()[0].string.same_letters(
      pauli::PauliString::from_string("XIIIIY")));
}

TEST(CompressedOps, BosonicGeneratorIsTwoQubitGivens) {
  // Bosonic term: creation pair (2,3), annihilation pair (0,1).
  const auto term = ExcitationTerm::make_double(2, 3, 0, 1);
  const pauli::PauliSum g = compressed_generator(6, term, {0, 2});
  // sigma+_2 sigma-_0 - h.c. expands to (XY - YX)-type strings on qubits
  // {0, 2} only.
  ASSERT_EQ(g.size(), 2u);
  for (const auto& t : g.terms()) {
    EXPECT_EQ(t.string.weight(), 2u);
    EXPECT_EQ(t.string.letter(1), pauli::Letter::I);
    EXPECT_EQ(t.string.letter(3), pauli::Letter::I);
    EXPECT_NEAR(t.coefficient.real(), 0.0, 1e-12);  // anti-Hermitian
  }
}

TEST(CompressedOps, HybridGeneratorWeightThree) {
  // Hybrid with creation pair (2,3) and annihilation on 0, 1 is bosonic --
  // use annihilation (0, 4): JW string Z1 Z2 Z3 between; pairs (2,3)
  // compressed removes ZZ, Z1 remains (uncompressed spectator member of
  // pair (0,1)? no -- (0,1) not compressed here).
  const auto term = ExcitationTerm::make_double(2, 3, 0, 4);
  const pauli::PauliSum g = compressed_generator(6, term, {2});
  ASSERT_EQ(g.size(), 4u);
  for (const auto& t : g.terms()) {
    // supports qubits {0, 1(Z), 2, 4}: weight 4 with the Z1 string letter.
    EXPECT_EQ(t.string.letter(3), pauli::Letter::I);
    EXPECT_NEAR(t.coefficient.real(), 0.0, 1e-12);
  }
}

TEST(CompressedOps, CompressedCircuitMatchesUncompressedOnSymmetricStates) {
  // Pin the semantics: for the bosonic term exp(theta(T - T^dag)) acting on
  // a pair-symmetric state, the compressed generator conjugated by the
  // compression CNOTs reproduces the full JW unitary (up to theta sign,
  // which VQE absorbs; we test both signs and require one to match).
  const std::size_t n = 4;
  const auto term = ExcitationTerm::make_double(2, 3, 0, 1);
  const auto enc = transform::LinearEncoding::jordan_wigner(n);
  const pauli::PauliSum full = enc.map(term.generator());
  const pauli::PauliSum comp = compressed_generator(n, term, {0, 2});
  const double theta = 0.437;

  for (int sign = -1; sign <= 1; sign += 2) {
    // Start from |1100> occupation (modes 0,1 occupied) = HF-like state.
    sim::StateVector full_sv = sim::StateVector::basis_state(n, 0b0011);
    for (const auto& t : full.terms())
      full_sv.apply_pauli_exp(t.string, -2.0 * t.coefficient.imag() * theta);

    // Compressed path: prepare |1 0 0 0> (pair (0,1) compressed to qubit 0,
    // pair (2,3) to qubit 2), apply compressed exponential, decompress via
    // CNOTs.
    sim::StateVector comp_sv = sim::StateVector::basis_state(n, 0b0001);
    for (const auto& t : comp.terms())
      comp_sv.apply_pauli_exp(t.string,
                              sign * -2.0 * t.coefficient.imag() * theta);
    comp_sv.apply_cnot(0, 1);
    comp_sv.apply_cnot(2, 3);

    double dist = 0;
    for (std::size_t i = 0; i < full_sv.dim(); ++i)
      dist = std::max(dist,
                      std::abs(full_sv.amplitude(i) - comp_sv.amplitude(i)));
    if (dist < 1e-10) {
      SUCCEED();
      return;
    }
  }
  FAIL() << "neither theta sign matched the uncompressed evolution";
}

}  // namespace
}  // namespace femto::encoding
