// Tests for the CHP-style Clifford tableau (sim/stabilizer.hpp): exact-phase
// agreement with the generator-product CliffordMap, dense conjugation checks
// for every Clifford GateKind (including pi/2-grid rotations), the forward /
// input-side composition duality, and non-Clifford rejection.
#include <gtest/gtest.h>

#include <complex>
#include <vector>

#include "circuit/quantum_circuit.hpp"
#include "common/rng.hpp"
#include "pauli/clifford_map.hpp"
#include "sim/stabilizer.hpp"
#include "sim/statevector.hpp"
#include "verify/test_support.hpp"

namespace femto::sim {
namespace {

using circuit::Gate;
using circuit::GateKind;
using circuit::QuantumCircuit;
using pauli::PauliString;

/// Random n-qubit Pauli string (uniform letters), canonical +1 sign.
PauliString random_pauli(std::size_t n, Rng& rng) {
  PauliString p(n);
  for (std::size_t q = 0; q < n; ++q)
    p.set_letter(q, static_cast<pauli::Letter>(rng.index(4)));
  return p;
}

/// Random circuit over the H/S/CNOT generating set.
QuantumCircuit random_hsc_circuit(std::size_t n, int gates, Rng& rng) {
  QuantumCircuit c(n);
  for (int g = 0; g < gates; ++g) {
    switch (rng.index(3)) {
      case 0: c.append(Gate::h(rng.index(n))); break;
      case 1: c.append(Gate::s(rng.index(n))); break;
      default: {
        const std::size_t a = rng.index(n);
        std::size_t b = rng.index(n);
        if (a == b) b = (b + 1) % n;
        c.append(Gate::cnot(a, b));
      }
    }
  }
  return c;
}

/// P |psi> as a fresh statevector (exact phase via accumulate_pauli).
StateVector pauli_applied(const StateVector& sv, const PauliString& p) {
  std::vector<Complex> out(sv.dim(), Complex{0.0, 0.0});
  sv.accumulate_pauli(p, Complex{1.0, 0.0}, out);
  StateVector result(sv.num_qubits());
  result.amplitudes() = std::move(out);
  return result;
}

double max_amp_diff(const StateVector& a, const StateVector& b) {
  double d = 0.0;
  for (std::size_t i = 0; i < a.dim(); ++i)
    d = std::max(d, std::abs(a.amplitude(i) - b.amplitude(i)));
  return d;
}

/// Checks U P = Q U exactly (no global-phase slack), where Q = tableau(P):
/// the strongest statement that the tableau tracks conjugation phases right.
void expect_conjugation_exact(const QuantumCircuit& c, const PauliString& p,
                              Rng& rng) {
  const auto tableau = StabilizerTableau::from_circuit(c);
  ASSERT_TRUE(tableau.has_value()) << c.to_string();
  const PauliString q = tableau->apply(p);
  StateVector psi(c.num_qubits());
  for (auto& amp : psi.amplitudes()) amp = Complex{rng.normal(), rng.normal()};
  psi.normalize();
  // U (P |psi>)
  StateVector lhs = pauli_applied(psi, p);
  lhs.apply_circuit(c);
  // Q (U |psi>)
  StateVector rhs = psi;
  rhs.apply_circuit(c);
  rhs = pauli_applied(rhs, q);
  EXPECT_LT(max_amp_diff(lhs, rhs), 1e-9)
      << "circuit:\n" << c.to_string() << "P = " << p.to_string()
      << "  Q = " << q.to_string();
}

TEST(StabilizerTableau, MatchesCliffordMapOnRandomCircuits) {
  Rng rng(11);
  const std::size_t n = 5;
  for (int rep = 0; rep < 20; ++rep) {
    const QuantumCircuit c = random_hsc_circuit(n, 40, rng);
    pauli::CliffordMap map(n);
    for (const Gate& g : c.gates()) {
      switch (g.kind) {
        case GateKind::kH: map.then_hadamard(g.q0); break;
        case GateKind::kS: map.then_phase(g.q0); break;
        default: map.then_cnot(g.q0, g.q1);
      }
    }
    const auto tableau = StabilizerTableau::from_circuit(c);
    ASSERT_TRUE(tableau.has_value());
    for (int k = 0; k < 8; ++k) {
      const PauliString p = random_pauli(n, rng);
      EXPECT_EQ(tableau->apply(p), map.apply(p))
          << "P = " << p.to_string() << "\n" << c.to_string();
    }
  }
}

TEST(StabilizerTableau, EveryCliffordGateKindConjugatesExactly) {
  Rng rng(23);
  const std::size_t n = 3;
  std::vector<Gate> gates = {
      Gate::x(0),          Gate::y(1),           Gate::z(2),
      Gate::h(0),          Gate::s(1),           Gate::sdg(2),
      Gate::cnot(0, 2),    Gate::cnot(2, 1),     Gate::cz(0, 1),
      Gate::swap(1, 2),    Gate::rz(0, M_PI_2),  Gate::rz(1, M_PI),
      Gate::rz(2, -M_PI_2), Gate::rx(0, M_PI_2), Gate::rx(1, M_PI),
      Gate::ry(2, M_PI_2), Gate::ry(0, -M_PI_2), Gate::ry(1, M_PI),
      Gate::xxrot(0, 1, M_PI_2), Gate::xxrot(1, 2, -M_PI_2),
      Gate::xxrot(0, 2, M_PI),   Gate::xyrot(0, 1, M_PI_2),
      Gate::xyrot(1, 2, M_PI),   Gate::xyrot(0, 2, -M_PI_2),
      Gate::rz(0, 4.0 * M_PI),   Gate::xxrot(0, 1, 2.0 * M_PI),
  };
  for (const Gate& g : gates) {
    QuantumCircuit c(n);
    c.append(g);
    for (int k = 0; k < 6; ++k)
      expect_conjugation_exact(c, random_pauli(n, rng), rng);
  }
  // And mixed circuits over the full Clifford surface.
  for (int rep = 0; rep < 10; ++rep) {
    QuantumCircuit c(n);
    for (int k = 0; k < 15; ++k) c.append(gates[rng.index(gates.size())]);
    expect_conjugation_exact(c, random_pauli(n, rng), rng);
  }
}

TEST(StabilizerTableau, InputCompositionBuildsTheInverseMap) {
  Rng rng(37);
  const std::size_t n = 6;
  for (int rep = 0; rep < 15; ++rep) {
    const QuantumCircuit c = random_hsc_circuit(n, 50, rng);
    const auto forward = StabilizerTableau::from_circuit(c);
    ASSERT_TRUE(forward.has_value());
    StabilizerTableau inverse(n);
    for (const Gate& g : c.gates()) ASSERT_TRUE(inverse.input_gate(g));
    // input-composition over C equals forward folding of C^-1...
    const auto of_inverse = StabilizerTableau::from_circuit(c.inverse());
    ASSERT_TRUE(of_inverse.has_value());
    EXPECT_TRUE(inverse == *of_inverse);
    // ...and the two maps cancel exactly on arbitrary strings.
    for (int k = 0; k < 6; ++k) {
      const PauliString p = random_pauli(n, rng);
      EXPECT_EQ(inverse.apply(forward->apply(p)), p) << p.to_string();
    }
  }
}

TEST(StabilizerTableau, EqualityDetectsSingleGateCorruption) {
  Rng rng(41);
  const std::size_t n = 8;
  const QuantumCircuit c = random_hsc_circuit(n, 60, rng);
  const auto reference = StabilizerTableau::from_circuit(c);
  ASSERT_TRUE(reference.has_value());
  QuantumCircuit corrupted = c;
  // Flip one CNOT's direction (guaranteed present with 60 gates).
  ASSERT_LT(verify::testing::flip_first_cnot(corrupted), corrupted.size());
  const auto other = StabilizerTableau::from_circuit(corrupted);
  ASSERT_TRUE(other.has_value());
  EXPECT_FALSE(*reference == *other);
  EXPECT_FALSE(tableau_mismatch(*reference, *other).empty());
  EXPECT_TRUE(tableau_mismatch(*reference, *reference).empty());
}

TEST(StabilizerTableau, RejectsNonCliffordGatesUntouched) {
  StabilizerTableau t(2);
  const StabilizerTableau before = t;
  EXPECT_FALSE(t.then_gate(Gate::rz(0, 0.3)));
  EXPECT_FALSE(t.then_gate(Gate::rz(0, M_PI_2, /*param=*/0)));  // variational
  EXPECT_FALSE(t.then_gate(Gate::xxrot(0, 1, 0.7)));
  EXPECT_FALSE(t.input_gate(Gate::ry(1, 1.1)));
  EXPECT_TRUE(t == before);
  EXPECT_TRUE(t.is_identity());
  EXPECT_FALSE(StabilizerTableau::from_circuit([] {
                 QuantumCircuit c(2);
                 c.append(Gate::rz(0, 0.25));
                 return c;
               }()).has_value());
}

}  // namespace
}  // namespace femto::sim
