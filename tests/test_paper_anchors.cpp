// Consolidated regression guards for the paper's headline quantitative
// claims, run end-to-end through the real chemistry + compiler pipeline on
// the fastest Table I rows. If any of these break, the reproduction story
// breaks -- they are the "shape" of the paper in executable form.
#include <gtest/gtest.h>

#include "chem/fci.hpp"
#include "chem/integrals.hpp"
#include "chem/mo_integrals.hpp"
#include "chem/molecules.hpp"
#include "chem/scf.hpp"
#include "core/compiler.hpp"
#include "transform/linear_encoding.hpp"
#include "vqe/driver.hpp"
#include "vqe/uccsd.hpp"

namespace femto {
namespace {

struct MoleculeData {
  std::size_t n = 0;
  std::vector<fermion::ExcitationTerm> terms;
  chem::SpinOrbitalIntegrals so;
};

[[nodiscard]] MoleculeData prepare(const chem::Molecule& mol, std::size_t ne) {
  auto basis = chem::build_sto3g(mol);
  chem::normalize_basis(basis);
  const auto ints = chem::compute_integrals(mol, basis);
  const auto scf = chem::run_rhf(mol, ints);
  const auto mo = chem::transform_to_mo(mol, ints, scf);
  MoleculeData d;
  d.so = chem::to_spin_orbitals(mo);
  d.n = d.so.n;
  d.terms = vqe::uccsd_hmp2_terms(d.so);
  if (d.terms.size() > ne) d.terms.resize(ne);
  return d;
}

[[nodiscard]] int count_for(const MoleculeData& d, const char* column) {
  core::CompileOptions opt;
  opt.emit_circuit = false;
  opt.sa_options.steps = 800;
  opt.pso_options.iterations = 30;
  opt.pso_options.particles = 12;
  opt.gtsp_options.generations = 150;
  const std::string c = column;
  if (c == "JW") {
    opt.transform = core::TransformKind::kJordanWigner;
    opt.sorting = core::SortingMode::kBaseline;
    opt.compression = core::CompressionMode::kBosonicOnly;
  } else if (c == "BK") {
    opt.transform = core::TransformKind::kBravyiKitaev;
    opt.sorting = core::SortingMode::kBaseline;
    opt.compression = core::CompressionMode::kBosonicOnly;
  } else if (c == "GT") {
    opt.transform = core::TransformKind::kBaselineGT;
    opt.sorting = core::SortingMode::kBaseline;
    opt.compression = core::CompressionMode::kBosonicOnly;
  } else {
    opt.transform = core::TransformKind::kAdvanced;
    opt.sorting = core::SortingMode::kAdvanced;
    opt.compression = core::CompressionMode::kHybrid;
  }
  return core::compile_vqe(d.n, d.terms, opt).model_cnots;
}

TEST(PaperAnchors, TableOneHfRowShape) {
  // HF at Ne = 3 (the paper's chemical-accuracy count). Shape requirements:
  // Adv < GT <= JW < BK and the Adv improvement over GT within a sane band
  // around the paper's 24%.
  const MoleculeData d = prepare(chem::make_hf(), 3);
  const int jw = count_for(d, "JW");
  const int bk = count_for(d, "BK");
  const int gt = count_for(d, "GT");
  const int adv = count_for(d, "Adv");
  EXPECT_LT(adv, gt);
  EXPECT_LE(gt, jw);
  EXPECT_LT(jw, bk);
  const double improve = 100.0 * (gt - adv) / gt;
  EXPECT_GT(improve, 8.0);
  EXPECT_LT(improve, 45.0);
}

TEST(PaperAnchors, WaterEarlyTermsIncludeCheapBosonicAdds) {
  // The paper's Table I water rows grow 42 -> 44 -> 46: the 5th and 6th
  // HMP2 terms are 2-CNOT bosonic pairs. Our static MP2 ranking must agree.
  const MoleculeData d = prepare(chem::make_h2o(), 6);
  ASSERT_GE(d.terms.size(), 6u);
  EXPECT_EQ(d.terms[4].classification(), fermion::ExcitationClass::kBosonic);
  EXPECT_EQ(d.terms[5].classification(), fermion::ExcitationClass::kBosonic);
}

TEST(PaperAnchors, Fig5EnergyParityBetweenPipelines) {
  // The Fig. 5 claim in miniature: at M = 4 water terms, the prior-art and
  // this-work term orders reach the same optimized energy.
  const MoleculeData d = prepare(chem::make_h2o(), 4);
  core::CompileOptions base;
  base.emit_circuit = false;
  base.transform = core::TransformKind::kJordanWigner;
  base.sorting = core::SortingMode::kBaseline;
  base.compression = core::CompressionMode::kBosonicOnly;
  core::CompileOptions adv;
  adv.emit_circuit = false;
  adv.sa_options.steps = 200;
  const auto res_base = core::compile_vqe(d.n, d.terms, base);
  const auto res_adv = core::compile_vqe(d.n, d.terms, adv);
  // Orders genuinely differ (otherwise the test is vacuous)?  Not required,
  // but energies must match either way.
  const auto enc = transform::LinearEncoding::jordan_wigner(d.n);
  const pauli::PauliSum hq = enc.map(chem::build_hamiltonian(d.so));
  const std::size_t hf_index = (std::size_t{1} << d.so.nelec) - 1;
  const auto optimize = [&](const std::vector<pauli::PauliSum>& gens) {
    vqe::VqeProblem prob;
    prob.num_qubits = d.n;
    prob.hamiltonian = hq;
    prob.generators = gens;
    prob.reference_index = hf_index;
    std::vector<double> theta(gens.size(), 0.0);
    vqe::OptimizerOptions vopt;
    vopt.max_iterations = 150;
    return vqe::minimize_energy(prob, theta, vopt).energy;
  };
  const double e_base = optimize(res_base.ordered_generators);
  const double e_adv = optimize(res_adv.ordered_generators);
  EXPECT_NEAR(e_base, e_adv, 1e-6);
}

TEST(PaperAnchors, BlockCostTriad) {
  // 2 / 7 / 13: the paper's three per-term compression levels, through the
  // real compiler.
  core::CompileOptions opt;
  opt.transform = core::TransformKind::kJordanWigner;
  EXPECT_EQ(core::compile_vqe(
                6, {fermion::ExcitationTerm::make_double(4, 5, 0, 1)}, opt)
                .model_cnots,
            2);
  EXPECT_EQ(core::compile_vqe(
                6, {fermion::ExcitationTerm::make_double(0, 1, 3, 4)}, opt)
                .model_cnots,
            7);
  core::CompileOptions plain = opt;
  plain.compression = core::CompressionMode::kNone;
  EXPECT_EQ(core::compile_vqe(
                8, {fermion::ExcitationTerm::make_double(4, 5, 0, 1)}, plain)
                .model_cnots,
            13);
}

}  // namespace
}  // namespace femto
