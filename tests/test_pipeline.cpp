// Tests for the parallel multi-restart compilation pipeline
// (core/pipeline.hpp) and its substrate: the thread pool, derived seed
// streams, the common optimizer restart driver, and the synthesis memo.
//
// The load-bearing property is determinism: one master seed must yield
// bit-identical best plans for ANY worker count, which is what makes the CI
// bench-regression gates trustworthy numbers rather than noise.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <vector>

#include "chem/integrals.hpp"
#include "chem/mo_integrals.hpp"
#include "chem/molecules.hpp"
#include "chem/scf.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "core/pipeline.hpp"
#include "opt/restart.hpp"
#include "synth/synthesis_cache.hpp"
#include "vqe/uccsd.hpp"

namespace femto {
namespace {

struct Fixture {
  std::size_t n = 0;
  std::vector<fermion::ExcitationTerm> terms;
};

/// HMP2-ranked UCCSD terms of a molecule, truncated to `keep`.
Fixture molecule_terms(const chem::Molecule& mol, std::size_t keep) {
  auto basis = chem::build_sto3g(mol);
  chem::normalize_basis(basis);
  const auto ints = chem::compute_integrals(mol, basis);
  const auto scf = chem::run_rhf(mol, ints);
  const auto mo = chem::transform_to_mo(mol, ints, scf);
  const auto so = chem::to_spin_orbitals(mo);
  Fixture f;
  f.n = so.n;
  f.terms = vqe::uccsd_hmp2_terms(so);
  if (f.terms.size() > keep) f.terms.resize(keep);
  return f;
}

const Fixture& lih() {
  static const Fixture f = molecule_terms(chem::make_lih(), 5);
  return f;
}

const Fixture& h2() {
  static const Fixture f = molecule_terms(chem::make_h2(), 3);
  return f;
}

/// Trimmed solver knobs: every stochastic stage still runs, just shorter.
core::CompileOptions fast_options() {
  core::CompileOptions o;
  o.coloring_orders = 8;
  o.sa_options = {2.0, 0.05, 150, 0};
  o.pso_options.particles = 8;
  o.pso_options.iterations = 15;
  o.gtsp_options.population = 12;
  o.gtsp_options.generations = 30;
  o.gtsp_options.stagnation_limit = 15;
  return o;
}

void expect_identical(const core::CompileResult& a,
                      const core::CompileResult& b) {
  EXPECT_EQ(a.num_qubits, b.num_qubits);
  EXPECT_EQ(a.model_cnots, b.model_cnots);
  EXPECT_EQ(a.emitted_cnots, b.emitted_cnots);
  EXPECT_EQ(a.decompression_cnots, b.decompression_cnots);
  EXPECT_TRUE(a.gamma == b.gamma);
  EXPECT_EQ(a.term_order, b.term_order);
  EXPECT_EQ(a.compressed_pair_lows, b.compressed_pair_lows);
  EXPECT_EQ(a.circuit.to_string(), b.circuit.to_string());
}

TEST(ThreadPool, ParallelForRunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> counts(kN);
  pool.parallel_for(kN, [&](std::size_t i) { counts[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(counts[i].load(), 1);
}

TEST(ThreadPool, CallerDrainsWhenPoolIsBusy) {
  // Even a 1-worker pool completes nested-free parallel_for promptly because
  // the calling thread participates in draining the index range.
  ThreadPool pool(1);
  std::atomic<int> sum{0};
  pool.parallel_for(100, [&](std::size_t i) {
    sum.fetch_add(static_cast<int>(i));
  });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(8,
                        [&](std::size_t i) {
                          if (i == 3) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(RngStreams, RestartZeroIsMasterAndStreamsAreDistinct) {
  const std::uint64_t master = 20230306;
  EXPECT_EQ(opt::restart_seed(master, 0), master);
  std::vector<std::uint64_t> seeds;
  for (std::size_t r = 0; r < 16; ++r) seeds.push_back(opt::restart_seed(master, r));
  for (std::size_t a = 0; a < seeds.size(); ++a)
    for (std::size_t b = a + 1; b < seeds.size(); ++b)
      EXPECT_NE(seeds[a], seeds[b]) << "streams " << a << " and " << b;
  // Pure function of (master, stream).
  EXPECT_EQ(derive_stream_seed(1, 2), derive_stream_seed(1, 2));
  EXPECT_NE(derive_stream_seed(1, 2), derive_stream_seed(2, 1));
}

TEST(RestartDriver, NeverWorseThanSingleShotAndPoolInvariant) {
  // Rugged integer lattice from test_opt, deliberately short chains so
  // single restarts frequently miss the global minimum.
  const auto energy = [](const int& x) {
    return (x - 17) * (x - 17) / 10.0 + 3.0 * std::sin(static_cast<double>(x));
  };
  const auto propose = [](const int& x, Rng& r) { return x + r.range(-3, 3); };
  const opt::SaOptions sa{5.0, 0.01, 60, 0};
  const std::uint64_t master = 99;

  Rng single_rng(master);
  const auto single =
      opt::simulated_annealing<int>(100, energy, propose, single_rng, sa);
  const auto serial = opt::simulated_annealing_restarts<int>(
      8, master, 100, energy, propose, sa, nullptr);
  EXPECT_LE(serial.best_energy, single.best_energy);

  ThreadPool pool(4);
  const auto parallel = opt::simulated_annealing_restarts<int>(
      8, master, 100, energy, propose, sa, &pool);
  EXPECT_EQ(parallel.best, serial.best);
  EXPECT_EQ(parallel.best_energy, serial.best_energy);
}

TEST(RestartDriver, GtspRestartsNeverWorse) {
  opt::GtspInstance inst;
  const std::size_t m = 10, k = 4;
  int next = 0;
  for (std::size_t c = 0; c < m; ++c) {
    std::vector<int> cluster;
    for (std::size_t v = 0; v < k; ++v) cluster.push_back(next++);
    inst.clusters.push_back(cluster);
  }
  inst.weight = [](int a, int b) {
    const unsigned h = static_cast<unsigned>(a) * 73856093u ^
                       static_cast<unsigned>(b) * 19349663u;
    return static_cast<double>(h % 1000) / 100.0;
  };
  opt::GtspOptions options;
  options.generations = 40;
  options.stagnation_limit = 20;
  Rng single_rng(7);
  const double single = opt::solve_gtsp_ga(inst, single_rng, options).value;
  ThreadPool pool(3);
  const double multi =
      opt::solve_gtsp_ga_restarts(6, 7, inst, options, &pool).value;
  EXPECT_GE(multi, single - 1e-12);
}

TEST(SynthesisCache, HitIsBitIdenticalToFreshSynthesis) {
  // Two-block sequence over 4 qubits; second synthesize must hit.
  std::vector<synth::RotationBlock> seq;
  synth::RotationBlock a;
  a.string = pauli::PauliString::from_string("XXYI");
  a.target = 0;
  a.angle_coeff = 0.25;
  a.param = 0;
  synth::RotationBlock b;
  b.string = pauli::PauliString::from_string("XYII");
  b.target = 0;
  b.angle_coeff = -0.5;
  b.param = 1;
  seq.push_back(a);
  seq.push_back(b);

  synth::SynthesisCache cache;
  const auto direct = synth::synthesize_sequence(4, seq);
  const auto first = cache.synthesize(4, seq);
  const auto second = cache.synthesize(4, seq);
  EXPECT_EQ(first.to_string(), direct.to_string());
  EXPECT_EQ(second.to_string(), direct.to_string());
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);

  // A different angle must be a different key (no false sharing).
  seq[1].angle_coeff = 0.75;
  const auto third = cache.synthesize(4, seq);
  EXPECT_EQ(third.to_string(), synth::synthesize_sequence(4, seq).to_string());
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(SynthesisCache, ConcurrentHitMissStatsStayConsistent) {
  // Hammer one shared cache from many threads over a small key set -- the
  // access pattern of a verification-enabled batch compile. Outputs must be
  // bit-identical to fresh synthesis, and the stats must add up: every call
  // is either a hit or a miss, every distinct key at least one miss (racing
  // first-comers may synthesize a key twice, but never corrupt it).
  const std::size_t n = 5;
  Rng rng(61);
  std::vector<std::vector<synth::RotationBlock>> sequences;
  for (int s = 0; s < 6; ++s) {
    std::vector<synth::RotationBlock> seq;
    for (int k = 0; k < 3; ++k) {
      synth::RotationBlock b;
      pauli::PauliString p(n);
      while (p.weight() < 2)
        p.set_letter(rng.index(n), static_cast<pauli::Letter>(1 + rng.index(3)));
      b.string = p;
      b.target = p.support().lowest_set();
      b.angle_coeff = rng.uniform(-1, 1);
      b.param = k;
      seq.push_back(std::move(b));
    }
    sequences.push_back(std::move(seq));
  }
  std::vector<std::string> expected;
  for (const auto& seq : sequences)
    expected.push_back(synth::synthesize_sequence(n, seq).to_string());

  synth::SynthesisCache cache;
  constexpr std::size_t kCalls = 600;
  std::atomic<int> wrong{0};
  ThreadPool pool(8);
  pool.parallel_for(kCalls, [&](std::size_t i) {
    const std::size_t s = i % sequences.size();
    if (cache.synthesize(n, sequences[s]).to_string() != expected[s])
      wrong.fetch_add(1);
  });
  EXPECT_EQ(wrong.load(), 0);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, kCalls);
  EXPECT_GE(stats.misses, sequences.size());
  EXPECT_EQ(cache.size(), sequences.size());
}

TEST(Pipeline, VerifyOnCertifiesEveryRestartAndScenario) {
  const Fixture& f = lih();
  core::PipelineOptions pipe_options;
  pipe_options.workers = 4;
  pipe_options.restarts = 3;
  pipe_options.verify = true;
  core::CompilePipeline pipeline(pipe_options);
  const core::MultiStartResult multi =
      pipeline.compile_best(f.n, f.terms, fast_options());
  ASSERT_EQ(multi.verification.size(), 3u);
  EXPECT_TRUE(multi.all_verified());
  for (const auto& report : multi.verification)
    EXPECT_TRUE(report.equivalent()) << report.to_string();

  // Batch-best: per-scenario verification slices, all certified, shared
  // synthesis cache in heavy concurrent use.
  core::CompileScenario s;
  s.name = "lih";
  s.num_qubits = f.n;
  s.terms = f.terms;
  s.options = fast_options();
  const auto batch = pipeline.compile_batch_best({s, s});
  ASSERT_EQ(batch.size(), 2u);
  for (const auto& b : batch) {
    ASSERT_EQ(b.verification.size(), 3u);
    EXPECT_TRUE(b.all_verified());
  }
  EXPECT_EQ(pipeline.last_verification().size(), 6u);
  EXPECT_GT(pipeline.cache().stats().hits, 0u);
}

TEST(Pipeline, VerifyOnDoesNotChangeResults) {
  const Fixture& f = h2();
  const core::CompileOptions options = fast_options();
  core::CompilePipeline plain({.workers = 2, .restarts = 2});
  core::PipelineOptions verified_options;
  verified_options.workers = 2;
  verified_options.restarts = 2;
  verified_options.verify = true;
  core::CompilePipeline verified(verified_options);
  const auto a = plain.compile_best(f.n, f.terms, options);
  const auto b = verified.compile_best(f.n, f.terms, options);
  EXPECT_EQ(a.best_restart, b.best_restart);
  expect_identical(a.best, b.best);
  EXPECT_TRUE(a.verification.empty());  // off by default
  EXPECT_TRUE(b.all_verified());
}

TEST(Pipeline, ThreadCountInvariance) {
  // 1, 2, and 8 workers must produce bit-identical best plans (gamma, term
  // order, CNOT counts, and the emitted gate stream) for one master seed.
  const Fixture& f = lih();
  const core::CompileOptions options = fast_options();
  std::vector<core::MultiStartResult> results;
  for (std::size_t workers : {1u, 2u, 8u}) {
    core::CompilePipeline pipeline({.workers = workers, .restarts = 4});
    results.push_back(pipeline.compile_best(f.n, f.terms, options));
  }
  for (std::size_t k = 1; k < results.size(); ++k) {
    EXPECT_EQ(results[k].best_restart, results[0].best_restart);
    ASSERT_EQ(results[k].restarts.size(), results[0].restarts.size());
    for (std::size_t r = 0; r < results[0].restarts.size(); ++r) {
      EXPECT_EQ(results[k].restarts[r].seed, results[0].restarts[r].seed);
      EXPECT_EQ(results[k].restarts[r].model_cnots,
                results[0].restarts[r].model_cnots);
    }
    expect_identical(results[k].best, results[0].best);
  }
}

TEST(Pipeline, MultiRestartNeverWorseThanSingleShot) {
  const Fixture& f = lih();
  const core::CompileOptions options = fast_options();
  const core::CompileResult single = core::compile_vqe(f.n, f.terms, options);
  core::CompilePipeline pipeline({.workers = 2, .restarts = 4});
  const core::MultiStartResult multi =
      pipeline.compile_best(f.n, f.terms, options);
  EXPECT_LE(multi.best.model_cnots, single.model_cnots);
  // Restart 0 runs the master seed itself, reproducing single-shot exactly.
  ASSERT_GE(multi.restarts.size(), 1u);
  EXPECT_EQ(multi.restarts[0].seed, options.seed);
  EXPECT_EQ(multi.restarts[0].model_cnots, single.model_cnots);
}

TEST(Pipeline, BatchOutputOrderMatchesInputScenarioOrder) {
  const Fixture& small = h2();
  const Fixture& big = lih();
  std::vector<core::CompileScenario> scenarios;
  {
    core::CompileScenario s;
    s.name = "lih-advanced";
    s.num_qubits = big.n;
    s.terms = big.terms;
    s.options = fast_options();
    scenarios.push_back(s);
  }
  {
    core::CompileScenario s;
    s.name = "h2-jw-baseline";
    s.num_qubits = small.n;
    s.terms = small.terms;
    s.options = fast_options();
    s.options.transform = core::TransformKind::kJordanWigner;
    s.options.sorting = core::SortingMode::kBaseline;
    s.options.compression = core::CompressionMode::kBosonicOnly;
    scenarios.push_back(s);
  }
  {
    core::CompileScenario s;
    s.name = "h2-advanced";
    s.num_qubits = small.n;
    s.terms = small.terms;
    s.options = fast_options();
    scenarios.push_back(s);
  }
  core::CompilePipeline pipeline({.workers = 4, .restarts = 1});
  const std::vector<core::CompileResult> results =
      pipeline.compile_batch(scenarios);
  ASSERT_EQ(results.size(), scenarios.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const core::CompileResult direct = core::compile_vqe(
        scenarios[i].num_qubits, scenarios[i].terms, scenarios[i].options);
    expect_identical(results[i], direct);
  }
}

TEST(Pipeline, BatchBestAgreesWithCompileBest) {
  const Fixture& f = h2();
  core::CompileScenario s;
  s.name = "h2";
  s.num_qubits = f.n;
  s.terms = f.terms;
  s.options = fast_options();
  core::CompilePipeline pipeline({.workers = 2, .restarts = 3});
  const auto batch = pipeline.compile_batch_best({s, s});
  const auto single = pipeline.compile_best(f.n, f.terms, s.options);
  ASSERT_EQ(batch.size(), 2u);
  for (const auto& b : batch) {
    EXPECT_EQ(b.best_restart, single.best_restart);
    expect_identical(b.best, single.best);
  }
}

// --- the unified CompileRequest entry point ---------------------------------

TEST(Pipeline, AdaptersAreThinWrappersOverCompileRequest) {
  const Fixture& f = h2();
  core::CompileScenario s;
  s.name = "h2";
  s.num_qubits = f.n;
  s.terms = f.terms;
  s.options = fast_options();
  core::CompilePipeline pipeline({.workers = 2, .restarts = 3});

  // Every legacy adapter must produce the exact plans the request form
  // produces -- they are documentation-preserving shims, not code paths.
  const core::CompileResponse response =
      pipeline.compile({.scenarios = {s}, .restarts = 3});
  ASSERT_TRUE(response.done());
  ASSERT_EQ(response.outcomes.size(), 1u);
  EXPECT_EQ(response.outcomes[0].restarts_completed, 3u);

  const core::MultiStartResult via_best =
      pipeline.compile_best(f.n, f.terms, s.options);
  expect_identical(response.outcomes[0].result.best, via_best.best);
  EXPECT_EQ(response.outcomes[0].result.best_restart, via_best.best_restart);

  const core::CompileResponse one_restart =
      pipeline.compile({.scenarios = {s}, .restarts = 1});
  ASSERT_TRUE(one_restart.done());
  const std::vector<core::CompileResult> via_batch =
      pipeline.compile_batch({s});
  expect_identical(one_restart.outcomes[0].result.best, via_batch[0]);

  const core::CompileResponse targeted = pipeline.compile({
      .scenarios = {s},
      .targets = {synth::HardwareTarget::all_to_all_cnot(),
                  synth::HardwareTarget::trapped_ion_xx()},
      .restarts = 3,
  });
  ASSERT_TRUE(targeted.done());
  ASSERT_EQ(targeted.outcomes.size(), 2u);
  const auto via_targets = pipeline.compile_best_for_targets(
      f.n, f.terms, s.options,
      {synth::HardwareTarget::all_to_all_cnot(),
       synth::HardwareTarget::trapped_ion_xx()});
  for (std::size_t t = 0; t < 2; ++t) {
    EXPECT_EQ(targeted.outcomes[t].target.name, via_targets[t].target.name);
    expect_identical(targeted.outcomes[t].result.best,
                     via_targets[t].result.best);
  }
}

TEST(Pipeline, CompileRequestRejectsInvalidInputWithDiagnostic) {
  core::CompilePipeline pipeline({.workers = 2});
  const Fixture& f = h2();
  core::CompileScenario s;
  s.name = "h2";
  s.num_qubits = f.n;
  s.terms = f.terms;
  s.options = fast_options();

  const core::CompileResponse no_restarts =
      pipeline.compile({.scenarios = {s}, .restarts = 0});
  EXPECT_EQ(no_restarts.status, core::RequestStatus::kRejected);
  EXPECT_FALSE(no_restarts.detail.empty());

  const core::CompileResponse no_scenarios = pipeline.compile({});
  EXPECT_EQ(no_scenarios.status, core::RequestStatus::kRejected);

  core::CompileScenario bad = s;
  bad.options.target = synth::HardwareTarget::linear_nn(2);  // wrong size
  const core::CompileResponse bad_target =
      pipeline.compile({.scenarios = {bad}});
  EXPECT_EQ(bad_target.status, core::RequestStatus::kRejected);
  EXPECT_NE(bad_target.detail.find(bad.name), std::string::npos)
      << "diagnostic must name the offending scenario: " << bad_target.detail;
}

TEST(Pipeline, CompileRequestHonorsCancelAndDeadline) {
  const Fixture& f = lih();
  core::CompileScenario s;
  s.name = "lih";
  s.num_qubits = f.n;
  s.terms = f.terms;
  s.options = fast_options();
  core::CompilePipeline pipeline({.workers = 2});

  // Pre-set cancel flag: nothing may run.
  std::atomic<bool> cancel{true};
  const core::CompileResponse cancelled = pipeline.compile(
      {.scenarios = {s}, .restarts = 8, .cancel = &cancel});
  EXPECT_EQ(cancelled.status, core::RequestStatus::kCancelled);
  ASSERT_EQ(cancelled.outcomes.size(), 1u);
  EXPECT_EQ(cancelled.outcomes[0].restarts_completed, 0u);

  // Already-expired deadline: same, but reported as DEADLINE_EXCEEDED.
  const core::CompileResponse expired = pipeline.compile(
      {.scenarios = {s}, .restarts = 8, .deadline_s = 1e-9});
  EXPECT_EQ(expired.status, core::RequestStatus::kDeadlineExceeded);
  EXPECT_EQ(expired.outcomes[0].restarts_completed, 0u);

  // A generous deadline changes nothing about the result.
  const core::CompileResponse relaxed = pipeline.compile(
      {.scenarios = {s}, .restarts = 2, .deadline_s = 3600.0});
  const core::CompileResponse plain =
      pipeline.compile({.scenarios = {s}, .restarts = 2});
  ASSERT_TRUE(relaxed.done());
  ASSERT_TRUE(plain.done());
  expect_identical(relaxed.outcomes[0].result.best,
                   plain.outcomes[0].result.best);
}

}  // namespace
}  // namespace femto
