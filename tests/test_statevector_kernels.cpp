// Randomized equivalence tests for the stride-based statevector kernels
// (sim/kernels.hpp): every GateKind, applied through StateVector, must match
// a naive dense-matrix reference (kron-embedded 2x2 / 4x4 unitaries applied
// by direct matvec) on random states, for 2-10 qubits with fixed RNG seeds.
#include <gtest/gtest.h>

#include <complex>
#include <vector>

#include "circuit/quantum_circuit.hpp"
#include "common/rng.hpp"
#include "pauli/pauli_string.hpp"
#include "pauli/pauli_sum.hpp"
#include "sim/statevector.hpp"

namespace femto::sim {
namespace {

using circuit::Gate;
using circuit::GateKind;
using circuit::QuantumCircuit;
using pauli::Letter;
using pauli::PauliString;

using Dense = std::vector<std::vector<Complex>>;

const Complex kI{0.0, 1.0};

/// 2x2 or 4x4 unitary of one gate (4x4 in the (q1,q0) two-bit subspace with
/// q0 the *low* bit, matching the little-endian statevector convention).
[[nodiscard]] Dense gate_matrix(const Gate& g) {
  const double a = g.angle;
  const double h = a / 2;
  switch (g.kind) {
    case GateKind::kX: return {{0, 1}, {1, 0}};
    case GateKind::kY: return {{0, -kI}, {kI, 0}};
    case GateKind::kZ: return {{1, 0}, {0, -1}};
    case GateKind::kH: {
      const double s = 1.0 / std::sqrt(2.0);
      return {{s, s}, {s, -s}};
    }
    case GateKind::kS: return {{1, 0}, {0, kI}};
    case GateKind::kSdg: return {{1, 0}, {0, -kI}};
    case GateKind::kRz: return {{std::exp(-kI * h), 0}, {0, std::exp(kI * h)}};
    case GateKind::kRx:
      return {{std::cos(h), -kI * std::sin(h)},
              {-kI * std::sin(h), std::cos(h)}};
    case GateKind::kRy:
      return {{std::cos(h), -std::sin(h)}, {std::sin(h), std::cos(h)}};
    // Two-qubit gates, basis order |q1 q0> = 00, 01, 10, 11 where q0 is
    // g.q0 (control for CNOT) and q1 is g.q1.
    case GateKind::kCnot:
      // control = q0 (low bit), target = q1 (high bit).
      return {{1, 0, 0, 0}, {0, 0, 0, 1}, {0, 0, 1, 0}, {0, 1, 0, 0}};
    case GateKind::kCz:
      return {{1, 0, 0, 0}, {0, 1, 0, 0}, {0, 0, 1, 0}, {0, 0, 0, -1}};
    case GateKind::kSwap:
      return {{1, 0, 0, 0}, {0, 0, 1, 0}, {0, 1, 0, 0}, {0, 0, 0, 1}};
    case GateKind::kXXrot: {
      const Complex c{std::cos(h), 0.0};
      const Complex ms = -kI * std::sin(h);
      return {{c, 0, 0, ms}, {0, c, ms, 0}, {0, ms, c, 0}, {ms, 0, 0, c}};
    }
    case GateKind::kXYrot: {
      // exp(-i a/2 (XX + YY)) acts on {01, 10} with angle a (XX and YY
      // halves add), identity on {00, 11}.
      const Complex c{std::cos(a), 0.0};
      const Complex ms = -kI * std::sin(a);
      return {{1, 0, 0, 0}, {0, c, ms, 0}, {0, ms, c, 0}, {0, 0, 0, 1}};
    }
  }
  return {};
}

/// Applies the kron-embedded gate to `amps` by direct dense matvec over the
/// involved bit(s) -- deliberately naive, no strides, no structure.
[[nodiscard]] std::vector<Complex> dense_apply(const Gate& g,
                                               const std::vector<Complex>& in,
                                               std::size_t n) {
  const Dense m = gate_matrix(g);
  std::vector<Complex> out(in.size(), Complex{0.0, 0.0});
  if (m.size() == 2) {
    const std::size_t bit = std::size_t{1} << g.q0;
    for (std::size_t i = 0; i < in.size(); ++i) {
      const std::size_t r = (i & bit) ? 1 : 0;
      out[i] = m[r][0] * in[i & ~bit] + m[r][1] * in[i | bit];
    }
    return out;
  }
  const std::size_t b0 = std::size_t{1} << g.q0;
  const std::size_t b1 = std::size_t{1} << g.q1;
  (void)n;
  for (std::size_t i = 0; i < in.size(); ++i) {
    const std::size_t r = ((i & b0) ? 1 : 0) | ((i & b1) ? 2 : 0);
    const std::size_t base = i & ~(b0 | b1);
    for (std::size_t c = 0; c < 4; ++c) {
      const std::size_t j = base | ((c & 1) ? b0 : 0) | ((c & 2) ? b1 : 0);
      out[i] += m[r][c] * in[j];
    }
  }
  return out;
}

[[nodiscard]] StateVector random_state(std::size_t n, Rng& rng) {
  StateVector sv(n);
  for (auto& a : sv.amplitudes()) a = Complex(rng.normal(), rng.normal());
  sv.normalize();
  return sv;
}

[[nodiscard]] double max_diff(const std::vector<Complex>& a,
                              const std::vector<Complex>& b) {
  double d = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    d = std::max(d, std::abs(a[i] - b[i]));
  return d;
}

[[nodiscard]] Gate random_gate(GateKind kind, std::size_t n, Rng& rng) {
  Gate g;
  g.kind = kind;
  g.q0 = rng.index(n);
  if (circuit::is_two_qubit(kind)) {
    do {
      g.q1 = rng.index(n);
    } while (g.q1 == g.q0);
  }
  if (circuit::is_rotation(kind)) g.angle = rng.uniform(-3.0, 3.0);
  return g;
}

constexpr GateKind kAllKinds[] = {
    GateKind::kX,    GateKind::kY,  GateKind::kZ,    GateKind::kH,
    GateKind::kS,    GateKind::kSdg, GateKind::kRz,  GateKind::kRx,
    GateKind::kRy,   GateKind::kCnot, GateKind::kCz, GateKind::kSwap,
    GateKind::kXXrot, GateKind::kXYrot};

/// Dense action of a Pauli string: out[j] += P[j][i] * in[i], built
/// per-letter from the definitions (shared reference for the exp and
/// accumulate tests).
[[nodiscard]] std::vector<Complex> dense_pauli_apply(
    const PauliString& p, const std::vector<Complex>& in) {
  const std::size_t n = p.num_qubits();
  std::vector<Complex> out(in.size(), Complex{0.0, 0.0});
  for (std::size_t i = 0; i < in.size(); ++i) {
    std::size_t j = i;
    Complex val = p.sign();
    for (std::size_t q = 0; q < n; ++q) {
      const bool bit = (i >> q) & 1;
      switch (p.letter(q)) {
        case Letter::I: break;
        case Letter::X: j ^= std::size_t{1} << q; break;
        case Letter::Y:
          j ^= std::size_t{1} << q;
          val *= bit ? Complex(0, -1) : Complex(0, 1);
          break;
        case Letter::Z:
          if (bit) val = -val;
          break;
      }
    }
    out[j] += val * in[i];
  }
  return out;
}

class KernelEquivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KernelEquivalence, EveryGateKindMatchesDenseReference) {
  const std::size_t n = GetParam();
  Rng rng(0xfeed0000 + n);
  for (const GateKind kind : kAllKinds) {
    for (int rep = 0; rep < 8; ++rep) {
      const Gate g = random_gate(kind, n, rng);
      StateVector sv = random_state(n, rng);
      const std::vector<Complex> expected =
          dense_apply(g, sv.amplitudes(), n);
      sv.apply_gate(g);
      EXPECT_LT(max_diff(sv.amplitudes(), expected), 1e-12)
          << "gate " << g.to_string() << " on " << n << " qubits";
    }
  }
}

TEST_P(KernelEquivalence, RandomCircuitMatchesDenseReference) {
  const std::size_t n = GetParam();
  Rng rng(0xc1c0 + n);
  StateVector sv = random_state(n, rng);
  std::vector<Complex> ref = sv.amplitudes();
  QuantumCircuit qc(n);
  for (int step = 0; step < 60; ++step) {
    const GateKind kind = kAllKinds[rng.index(std::size(kAllKinds))];
    const Gate g = random_gate(kind, n, rng);
    qc.append(g);
    ref = dense_apply(g, ref, n);
  }
  // apply_circuit exercises the diagonal-run fusion path on top of the
  // per-gate kernels.
  sv.apply_circuit(qc);
  EXPECT_LT(max_diff(sv.amplitudes(), ref), 1e-11);
}

TEST_P(KernelEquivalence, DiagonalFusionMatchesGateByGate) {
  const std::size_t n = GetParam();
  Rng rng(0xd1a6 + n);
  // A circuit dominated by diagonal runs: Rz/S/Sdg/Z bursts on one qubit
  // separated by occasional entanglers.
  QuantumCircuit qc(n);
  const GateKind diag_kinds[] = {GateKind::kZ, GateKind::kS, GateKind::kSdg,
                                 GateKind::kRz};
  for (int burst = 0; burst < 10; ++burst) {
    const std::size_t q = rng.index(n);
    for (int k = 0; k < 4; ++k) {
      Gate g = random_gate(diag_kinds[rng.index(4)], n, rng);
      g.q0 = q;
      qc.append(g);
    }
    qc.append(random_gate(GateKind::kCnot, n, rng));
  }
  StateVector fused = random_state(n, rng);
  StateVector unfused = fused;
  fused.apply_circuit(qc);
  for (const Gate& g : qc.gates()) unfused.apply_gate(g);
  EXPECT_LT(max_diff(fused.amplitudes(), unfused.amplitudes()), 1e-12);
}

TEST_P(KernelEquivalence, PauliExpMatchesDenseFormula) {
  const std::size_t n = GetParam();
  Rng rng(0xab5 + n);
  for (int rep = 0; rep < 10; ++rep) {
    PauliString p(n);
    for (std::size_t q = 0; q < n; ++q)
      p.set_letter(q, static_cast<Letter>(rng.index(4)));
    if (rng.bernoulli(0.5)) p.set_phase_exponent(p.phase_exponent() + 2);
    const double angle = rng.uniform(-3.0, 3.0);
    StateVector sv = random_state(n, rng);
    // exp(-i angle/2 P) = cos(angle/2) I - i sin(angle/2) P, with P acting
    // densely: P|i> = sign * prod letters.
    const std::vector<Complex>& in = sv.amplitudes();
    const std::vector<Complex> pv = dense_pauli_apply(p, in);
    std::vector<Complex> expected(in.size());
    const double c = std::cos(angle / 2), s = std::sin(angle / 2);
    for (std::size_t i = 0; i < in.size(); ++i)
      expected[i] = c * in[i] - kI * s * pv[i];
    sv.apply_pauli_exp(p, angle);
    EXPECT_LT(max_diff(sv.amplitudes(), expected), 1e-12)
        << p.to_string() << " angle " << angle;
  }
}

TEST_P(KernelEquivalence, AccumulatePauliMatchesDenseAction) {
  const std::size_t n = GetParam();
  Rng rng(0xacc + n);
  PauliString p(n);
  for (std::size_t q = 0; q < n; ++q)
    p.set_letter(q, static_cast<Letter>(rng.index(4)));
  const StateVector sv = random_state(n, rng);
  const Complex coeff{rng.normal(), rng.normal()};
  std::vector<Complex> out(sv.dim(), Complex{0.0, 0.0});
  sv.accumulate_pauli(p, coeff, out);
  // Dense: out[j] = coeff * sum_i P[j][i] amps[i].
  std::vector<Complex> expected = dense_pauli_apply(p, sv.amplitudes());
  for (Complex& v : expected) v *= coeff;
  EXPECT_LT(max_diff(out, expected), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(TwoToTenQubits, KernelEquivalence,
                         ::testing::Values(2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u,
                                           10u));

TEST(KernelEquivalence, GateNormPreservation) {
  // Unitarity smoke check at a size where every stride shape (low/high/mixed
  // qubit index) occurs.
  Rng rng(0x90f);
  const std::size_t n = 11;
  StateVector sv = random_state(n, rng);
  for (int step = 0; step < 200; ++step) {
    const GateKind kind = kAllKinds[rng.index(std::size(kAllKinds))];
    sv.apply_gate(random_gate(kind, n, rng));
  }
  EXPECT_NEAR(sv.norm(), 1.0, 1e-10);
}

}  // namespace
}  // namespace femto::sim
