// SIMD dispatch equivalence tests.
//
// The contract under test (sim/kernels.hpp, gf2/wordops.hpp): every
// dispatch level -- portable, AVX2, AVX-512 -- produces BIT-IDENTICAL
// results, because the vector paths reorder work across elements only,
// never within one element's arithmetic. The tests therefore compare raw
// bytes (memcmp), not tolerances. Levels the host CPU lacks are skipped
// automatically (simd::set_level clamps); on a plain x86-64 machine the
// suite still proves portable == AVX2, and on CI's x86-64-v3 leg that is
// the shipping pair.
//
// Also covered here: sim::BatchedState against B independent per-state
// runs (every gate kind, batch sizes 1/2/7/64, per-lane parameter sweeps),
// and the batched wiring in vqe::energies, core::evolve_states and the
// verify dense arbiter.
#include <gtest/gtest.h>

#include <complex>
#include <cstring>
#include <vector>

#include "circuit/quantum_circuit.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"
#include "core/dynamics.hpp"
#include "gf2/bitvec.hpp"
#include "gf2/wordops.hpp"
#include "obs/metrics.hpp"
#include "sim/batched.hpp"
#include "sim/statevector.hpp"
#include "verify/equivalence.hpp"
#include "vqe/driver.hpp"

namespace femto {
namespace {

using circuit::Gate;
using circuit::GateKind;
using circuit::QuantumCircuit;
using sim::Complex;
using sim::StateVector;

constexpr GateKind kAllKinds[] = {
    GateKind::kX,    GateKind::kY,  GateKind::kZ,    GateKind::kH,
    GateKind::kS,    GateKind::kSdg, GateKind::kRz,  GateKind::kRx,
    GateKind::kRy,   GateKind::kCnot, GateKind::kCz, GateKind::kSwap,
    GateKind::kXXrot, GateKind::kXYrot};

/// Levels this host can actually run (portable always; higher if the CPU
/// has them). Restores the entry level on destruction.
class LevelSession {
 public:
  LevelSession() : entry_(simd::level()) {
    levels_.push_back(simd::Level::kPortable);
    if (simd::set_level(simd::Level::kAvx2) == simd::Level::kAvx2)
      levels_.push_back(simd::Level::kAvx2);
    if (simd::set_level(simd::Level::kAvx512) == simd::Level::kAvx512)
      levels_.push_back(simd::Level::kAvx512);
    (void)simd::set_level(entry_);
  }
  ~LevelSession() { (void)simd::set_level(entry_); }

  [[nodiscard]] const std::vector<simd::Level>& levels() const {
    return levels_;
  }

 private:
  simd::Level entry_;
  std::vector<simd::Level> levels_;
};

[[nodiscard]] gf2::BitVec random_bits(std::size_t n, Rng& rng) {
  gf2::BitVec v(n);
  for (std::size_t i = 0; i < n; ++i) v.set(i, rng.bernoulli(0.5));
  return v;
}

[[nodiscard]] StateVector random_state(std::size_t n, Rng& rng) {
  StateVector sv(n);
  for (auto& a : sv.amplitudes()) a = Complex(rng.normal(), rng.normal());
  sv.normalize();
  return sv;
}

[[nodiscard]] Gate random_gate(GateKind kind, std::size_t n, Rng& rng) {
  Gate g;
  g.kind = kind;
  g.q0 = rng.index(n);
  if (circuit::is_two_qubit(kind)) {
    do {
      g.q1 = rng.index(n);
    } while (g.q1 == g.q0);
  }
  if (circuit::is_rotation(kind)) g.angle = rng.uniform(-3.0, 3.0);
  return g;
}

[[nodiscard]] bool bytes_equal(const std::vector<Complex>& a,
                               const std::vector<Complex>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(Complex)) == 0;
}

// --- dispatch plumbing ----------------------------------------------------

TEST(SimdDispatch, SetLevelClampsToHostSupport) {
  LevelSession session;
  const simd::Level best = simd::max_supported();
  EXPECT_EQ(simd::set_level(simd::Level::kPortable), simd::Level::kPortable);
  // Requesting more than the host has clamps to the host maximum.
  EXPECT_LE(static_cast<int>(simd::set_level(simd::Level::kAvx512)),
            static_cast<int>(best));
  EXPECT_EQ(simd::set_level(best), best);
}

TEST(SimdDispatch, LevelGaugePublished) {
  LevelSession session;
  (void)simd::set_level(simd::Level::kPortable);
  EXPECT_EQ(obs::registry().gauge("sim.simd_level").value(), 0);
  const simd::Level best = simd::max_supported();
  (void)simd::set_level(best);
  EXPECT_EQ(obs::registry().gauge("sim.simd_level").value(),
            static_cast<std::int64_t>(best));
}

TEST(SimdDispatch, LevelNames) {
  EXPECT_STREQ(simd::to_string(simd::Level::kPortable), "portable");
  EXPECT_STREQ(simd::to_string(simd::Level::kAvx2), "avx2");
  EXPECT_STREQ(simd::to_string(simd::Level::kAvx512), "avx512");
}

// --- gf2 word kernels -----------------------------------------------------

// Widths straddling the word boundaries: 1, 63/64/65 (one-word edge),
// 255/256/257 (the 4-word AVX2 block edge and the 8-word half of AVX-512).
constexpr std::size_t kWidths[] = {1, 63, 64, 65, 255, 256, 257};

TEST(SimdWordops, AllReductionsIdenticalAcrossLevels) {
  LevelSession session;
  Rng rng(20250807);
  for (const std::size_t n : kWidths) {
    for (int rep = 0; rep < 8; ++rep) {
      const gf2::BitVec a = random_bits(n, rng);
      const gf2::BitVec b = random_bits(n, rng);
      const gf2::BitVec c = random_bits(n, rng);
      const gf2::BitVec d = random_bits(n, rng);
      const std::size_t nw = a.word_count();

      std::vector<std::size_t> pops, apops, opops;
      std::vector<int> pars, apars;
      std::vector<gf2::wordops::SupportCounts> scs;
      for (const simd::Level lvl : session.levels()) {
        ASSERT_EQ(simd::set_level(lvl), lvl);
        pops.push_back(gf2::wordops::popcount(a.word_data(), nw));
        apops.push_back(
            gf2::wordops::and_popcount(a.word_data(), b.word_data(), nw));
        opops.push_back(
            gf2::wordops::or_popcount(a.word_data(), b.word_data(), nw));
        pars.push_back(gf2::wordops::parity(a.word_data(), nw) ? 1 : 0);
        apars.push_back(
            gf2::wordops::and_parity(a.word_data(), b.word_data(), nw) ? 1
                                                                       : 0);
        scs.push_back(gf2::wordops::support_counts(
            a.word_data(), b.word_data(), c.word_data(), d.word_data(), nw));
      }
      for (std::size_t l = 1; l < session.levels().size(); ++l) {
        EXPECT_EQ(pops[l], pops[0]) << "popcount n=" << n;
        EXPECT_EQ(apops[l], apops[0]) << "and_popcount n=" << n;
        EXPECT_EQ(opops[l], opops[0]) << "or_popcount n=" << n;
        EXPECT_EQ(pars[l], pars[0]) << "parity n=" << n;
        EXPECT_EQ(apars[l], apars[0]) << "and_parity n=" << n;
        EXPECT_EQ(scs[l].common, scs[0].common) << "support_counts n=" << n;
        EXPECT_EQ(scs[l].equal, scs[0].equal) << "support_counts n=" << n;
        EXPECT_EQ(scs[l].has_xy, scs[0].has_xy) << "support_counts n=" << n;
      }
    }
  }
}

TEST(SimdWordops, InplaceOpsIdenticalAcrossLevels) {
  LevelSession session;
  Rng rng(77);
  for (const std::size_t n : kWidths) {
    const gf2::BitVec src = random_bits(n, rng);
    const gf2::BitVec base = random_bits(n, rng);
    std::vector<gf2::BitVec> xors, ors, ands;
    for (const simd::Level lvl : session.levels()) {
      ASSERT_EQ(simd::set_level(lvl), lvl);
      gf2::BitVec x = base, o = base, a = base;
      x ^= src;
      o |= src;
      a &= src;
      xors.push_back(x);
      ors.push_back(o);
      ands.push_back(a);
    }
    for (std::size_t l = 1; l < session.levels().size(); ++l) {
      EXPECT_TRUE(xors[l] == xors[0]) << "xor n=" << n;
      EXPECT_TRUE(ors[l] == ors[0]) << "or n=" << n;
      EXPECT_TRUE(ands[l] == ands[0]) << "and n=" << n;
    }
  }
}

// --- statevector kernels --------------------------------------------------

TEST(SimdKernels, EveryGateKindBitIdenticalAcrossLevels) {
  LevelSession session;
  Rng rng(4242);
  const std::size_t n = 7;
  for (const GateKind kind : kAllKinds) {
    for (int rep = 0; rep < 4; ++rep) {
      const Gate g = random_gate(kind, n, rng);
      const StateVector base = random_state(n, rng);
      std::vector<std::vector<Complex>> results;
      for (const simd::Level lvl : session.levels()) {
        ASSERT_EQ(simd::set_level(lvl), lvl);
        StateVector sv = base;
        sv.apply_gate(g);
        results.push_back(sv.amplitudes());
      }
      for (std::size_t l = 1; l < session.levels().size(); ++l)
        EXPECT_TRUE(bytes_equal(results[l], results[0]))
            << "gate kind " << static_cast<int>(kind) << " level "
            << simd::to_string(session.levels()[l]);
    }
  }
}

TEST(SimdKernels, PauliExpBitIdenticalAcrossLevels) {
  LevelSession session;
  Rng rng(999);
  // Awkward mask shapes: pure Z (diagonal path, various run lengths), pure
  // X, X with low/high pivot, Y mixtures, single site, full support.
  const char* strings[] = {"ZIIIIII", "IIIZIIZ", "ZZZZZZZ", "XIIIIII",
                           "IIIIIIX", "XXIIIXX", "YIIIIIY", "XYZIZYX",
                           "IYIIIYI", "ZZXXYYZ"};
  for (const char* s : strings) {
    const pauli::PauliString p = pauli::PauliString::from_string(s);
    for (const double angle : {0.37, -1.1, 0.0}) {
      const StateVector base = random_state(p.num_qubits(), rng);
      std::vector<std::vector<Complex>> exps, accs;
      for (const simd::Level lvl : session.levels()) {
        ASSERT_EQ(simd::set_level(lvl), lvl);
        StateVector sv = base;
        sv.apply_pauli_exp(p, angle);
        exps.push_back(sv.amplitudes());
        std::vector<Complex> out(base.dim(), Complex{0.0, 0.0});
        base.accumulate_pauli(p, Complex{0.5, -0.25}, out);
        accs.push_back(std::move(out));
      }
      for (std::size_t l = 1; l < session.levels().size(); ++l) {
        EXPECT_TRUE(bytes_equal(exps[l], exps[0]))
            << s << " angle " << angle << " exp at "
            << simd::to_string(session.levels()[l]);
        EXPECT_TRUE(bytes_equal(accs[l], accs[0]))
            << s << " accumulate at "
            << simd::to_string(session.levels()[l]);
      }
    }
  }
}

/// Reference Pauli exponential: the historical per-index loop, no sub-run
/// decomposition. Guards the run-decomposed kernel against structural
/// mistakes (pair enumeration, phase hoisting), independent of SIMD.
void reference_pauli_exp(std::vector<Complex>& a,
                         const sim::kernels::PauliMasks& m, double c,
                         double s) {
  const std::size_t dim = a.size();
  if (m.x == 0) {
    const Complex even{c, -s}, odd{c, s};
    for (std::size_t i = 0; i < dim; ++i)
      a[i] *= (std::popcount(i & m.z) & 1) ? odd : even;
    return;
  }
  const std::size_t pb = std::size_t{1} << (std::bit_width(m.x) - 1);
  const std::size_t flip = static_cast<std::size_t>(m.x);
  const Complex mis{0.0, -s};
  for (std::size_t g = 0; g < dim; g += 2 * pb) {
    for (std::size_t i = g; i < g + pb; ++i) {
      const std::size_t j = i ^ flip;
      const Complex ai = a[i], aj = a[j];
      a[i] = c * ai + mis * m.phase(j) * aj;
      a[j] = c * aj + mis * m.phase(i) * ai;
    }
  }
}

TEST(SimdKernels, PauliExpMatchesPerIndexReference) {
  LevelSession session;
  ASSERT_EQ(simd::set_level(simd::Level::kPortable), simd::Level::kPortable);
  Rng rng(31337);
  const char* strings[] = {"ZIZ", "XIX", "YZY", "IXI", "ZZZZZ", "XYZIX"};
  for (const char* s : strings) {
    const pauli::PauliString p = pauli::PauliString::from_string(s);
    const StateVector base = random_state(p.num_qubits(), rng);
    const double angle = 0.83;
    const double half = p.sign().real() * angle / 2;

    StateVector sv = base;
    sv.apply_pauli_exp(p, angle);

    std::vector<Complex> ref = base.amplitudes();
    reference_pauli_exp(ref, sim::detail::make_masks(p), std::cos(half),
                        std::sin(half));
    EXPECT_TRUE(bytes_equal(sv.amplitudes(), ref)) << s;
  }
}

// --- batched statevector --------------------------------------------------

constexpr std::size_t kBatches[] = {1, 2, 7, 64};

TEST(BatchedState, EveryGateKindMatchesPerState) {
  Rng rng(60606);
  const std::size_t n = 5;
  for (const std::size_t batch : kBatches) {
    std::vector<StateVector> states;
    for (std::size_t b = 0; b < batch; ++b)
      states.push_back(random_state(n, rng));
    for (const GateKind kind : kAllKinds) {
      const Gate g = random_gate(kind, n, rng);
      sim::BatchedState bs = sim::BatchedState::from_states(states);
      bs.apply_gate(g);
      for (std::size_t b = 0; b < batch; ++b) {
        StateVector sv = states[b];
        sv.apply_gate(g);
        EXPECT_TRUE(bytes_equal(bs.lane(b).amplitudes(), sv.amplitudes()))
            << "kind " << static_cast<int>(kind) << " batch " << batch
            << " lane " << b;
      }
    }
  }
}

TEST(BatchedState, SharedCircuitMatchesPerState) {
  Rng rng(123321);
  const std::size_t n = 6;
  QuantumCircuit c(n);
  for (int k = 0; k < 40; ++k) {
    const GateKind kind =
        kAllKinds[rng.index(std::size(kAllKinds))];
    c.append(random_gate(kind, n, rng));
  }
  // Consecutive diagonals on one qubit exercise the fusion path.
  Gate rz;
  rz.kind = GateKind::kRz;
  rz.q0 = 2;
  rz.angle = 0.71;
  c.append(rz);
  rz.angle = -0.32;
  c.append(rz);

  for (const std::size_t batch : kBatches) {
    std::vector<StateVector> states;
    for (std::size_t b = 0; b < batch; ++b)
      states.push_back(random_state(n, rng));
    sim::BatchedState bs = sim::BatchedState::from_states(states);
    bs.apply_circuit(c);
    for (std::size_t b = 0; b < batch; ++b) {
      StateVector sv = states[b];
      sv.apply_circuit(c);
      EXPECT_TRUE(bytes_equal(bs.lane(b).amplitudes(), sv.amplitudes()))
          << "batch " << batch << " lane " << b;
    }
  }
}

TEST(BatchedState, PerLanePauliSweepMatchesPerState) {
  Rng rng(789789);
  const char* strings[] = {"ZIZIZ", "XXIII", "YZIXY", "IIZII", "XIIIX"};
  for (const char* s : strings) {
    const pauli::PauliString p = pauli::PauliString::from_string(s);
    const std::size_t n = p.num_qubits();
    for (const std::size_t batch : kBatches) {
      std::vector<StateVector> states;
      std::vector<double> angles;
      for (std::size_t b = 0; b < batch; ++b) {
        states.push_back(random_state(n, rng));
        angles.push_back(b == 0 ? 0.0 : rng.uniform(-2.0, 2.0));
      }
      sim::BatchedState bs = sim::BatchedState::from_states(states);
      bs.apply_pauli_exp(p, std::span<const double>(angles));
      for (std::size_t b = 0; b < batch; ++b) {
        StateVector sv = states[b];
        sv.apply_pauli_exp(p, angles[b]);
        EXPECT_TRUE(bytes_equal(bs.lane(b).amplitudes(), sv.amplitudes()))
            << s << " batch " << batch << " lane " << b;
      }
    }
  }
}

TEST(BatchedState, ExpectationsMatchPerState) {
  Rng rng(246810);
  const std::size_t n = 5;
  pauli::PauliSum h;
  h.add(Complex{0.7, 0.0}, pauli::PauliString::from_string("ZZIII"));
  h.add(Complex{-0.2, 0.0}, pauli::PauliString::from_string("XIXII"));
  h.add(Complex{0.05, 0.0}, pauli::PauliString::from_string("IYYIZ"));
  for (const std::size_t batch : kBatches) {
    std::vector<StateVector> states;
    for (std::size_t b = 0; b < batch; ++b)
      states.push_back(random_state(n, rng));
    const sim::BatchedState bs = sim::BatchedState::from_states(states);
    const std::vector<Complex> exps = bs.expectations(h);
    ASSERT_EQ(exps.size(), batch);
    for (std::size_t b = 0; b < batch; ++b) {
      const Complex scalar = states[b].expectation(h);
      EXPECT_EQ(exps[b].real(), scalar.real()) << "lane " << b;
      EXPECT_EQ(exps[b].imag(), scalar.imag()) << "lane " << b;
    }
  }
}

TEST(BatchedState, FitsMatchesConstructorContract) {
  // fits() is the graceful-fallback probe for the abort-on-violation
  // constructor precondition: n + lane_pow (lanes = bit_ceil(batch)) must
  // stay within the 2^28-amplitude padded-buffer ceiling.
  EXPECT_TRUE(sim::BatchedState::fits(3, 1));
  EXPECT_TRUE(sim::BatchedState::fits(28, 1));
  EXPECT_FALSE(sim::BatchedState::fits(28, 2));
  EXPECT_TRUE(sim::BatchedState::fits(24, 16));
  EXPECT_FALSE(sim::BatchedState::fits(24, 17));  // pads to 32 lanes
  EXPECT_TRUE(sim::BatchedState::fits(0, std::size_t{1} << 28));
  EXPECT_FALSE(sim::BatchedState::fits(1, std::size_t{1} << 28));
  EXPECT_FALSE(sim::BatchedState::fits(3, 0));
  // Far past the ceiling: must return false, not overflow the shift.
  EXPECT_FALSE(sim::BatchedState::fits(60, 16));
  EXPECT_FALSE(sim::BatchedState::fits(3, ~std::size_t{0}));
}

TEST(BatchedState, AppliedCounterAdvances) {
  const std::uint64_t before =
      obs::registry().counter("sim.batched_states_applied").value();
  sim::BatchedState bs(3, 5);
  Gate g;
  g.kind = GateKind::kH;
  g.q0 = 1;
  bs.apply_gate(g);
  EXPECT_EQ(obs::registry().counter("sim.batched_states_applied").value(),
            before + 5);
}

// --- batched wiring: VQE, dynamics, verify --------------------------------

TEST(BatchedWiring, VqeEnergiesMatchScalarPath) {
  vqe::VqeProblem prob;
  prob.num_qubits = 4;
  prob.reference_index = 0b0011;
  prob.hamiltonian.add(Complex{0.4, 0.0}, pauli::PauliString::from_string("ZZII"));
  prob.hamiltonian.add(Complex{0.1, 0.0}, pauli::PauliString::from_string("XXYY"));
  prob.hamiltonian.add(Complex{-0.3, 0.0}, pauli::PauliString::from_string("IZIZ"));
  for (const char* s : {"XYII", "IXYI", "YXXX"}) {
    pauli::PauliSum g;
    g.add(Complex{0.0, 1.0}, pauli::PauliString::from_string(s));
    prob.generators.push_back(std::move(g));
  }
  Rng rng(1357);
  std::vector<std::vector<double>> thetas;
  for (std::size_t b = 0; b < 7; ++b) {
    std::vector<double> t(prob.generators.size());
    for (double& v : t) v = rng.uniform(-1.5, 1.5);
    thetas.push_back(std::move(t));
  }
  thetas[3].assign(prob.generators.size(), 0.0);  // exercise theta = 0 lanes

  const std::vector<double> batched = vqe::energies(
      prob, std::span<const std::vector<double>>(thetas));
  ASSERT_EQ(batched.size(), thetas.size());
  for (std::size_t b = 0; b < thetas.size(); ++b)
    EXPECT_EQ(batched[b], vqe::energy(prob, thetas[b])) << "lane " << b;
}

TEST(BatchedWiring, TrotterEvolutionMatchesPerState) {
  Rng rng(8642);
  const std::size_t n = 4;
  pauli::PauliSum h;
  h.add(Complex{0.5, 0.0}, pauli::PauliString::from_string("ZZII"));
  h.add(Complex{0.25, 0.0}, pauli::PauliString::from_string("IXXI"));
  h.add(Complex{0.1, 0.0}, pauli::PauliString::from_string("IIZY"));
  const core::TrotterResult trotter =
      core::compile_trotter_step(n, h, 0.05);

  std::vector<StateVector> states;
  for (std::size_t b = 0; b < 3; ++b) states.push_back(random_state(n, rng));
  const sim::BatchedState evolved = core::evolve_states(
      trotter.step, 4, sim::BatchedState::from_states(states));
  for (std::size_t b = 0; b < states.size(); ++b) {
    StateVector sv = states[b];
    for (int step = 0; step < 4; ++step) sv.apply_circuit(trotter.step);
    EXPECT_TRUE(bytes_equal(evolved.lane(b).amplitudes(), sv.amplitudes()))
        << "lane " << b;
  }
}

TEST(BatchedWiring, DenseArbiterRejectsLiteralAngleCounterexample) {
  // Literal-angle (parameter-free) circuits take the batched tier-3 path:
  // all dense trials advance together through one BatchedState application.
  QuantumCircuit a(3), b(3);
  Gate g;
  g.kind = GateKind::kH;
  g.q0 = 0;
  a.append(g);
  b.append(g);
  g.kind = GateKind::kRx;
  g.q0 = 1;
  g.angle = 0.5;
  a.append(g);
  g.angle = 0.9;  // genuinely different unitary
  b.append(g);
  const verify::EquivalenceChecker checker;
  const verify::EquivalenceReport report = checker.check(a, b);
  EXPECT_EQ(report.status, verify::EquivalenceStatus::kNotEquivalent);
  EXPECT_EQ(report.method, verify::EquivalenceMethod::kDenseSpotCheck);
  EXPECT_TRUE(report.proven);
}

TEST(BatchedWiring, DenseArbiterAcceptsNearIdenticalLiteralAngles) {
  // An angle difference below dense resolution but above the symbolic
  // tolerance: tier 2 flags it, the batched dense arbiter waves it through
  // as probabilistic equivalence -- the literal-angle corner case tier 3
  // exists for.
  QuantumCircuit a(3), b(3);
  Gate g;
  g.kind = GateKind::kRx;
  g.q0 = 2;
  g.angle = 0.5;
  a.append(g);
  g.angle = 0.5 + 1e-7;
  b.append(g);
  const verify::EquivalenceChecker checker;
  const verify::EquivalenceReport report = checker.check(a, b);
  EXPECT_EQ(report.status, verify::EquivalenceStatus::kEquivalent);
  EXPECT_EQ(report.method, verify::EquivalenceMethod::kDenseSpotCheck);
  EXPECT_FALSE(report.proven);
}

}  // namespace
}  // namespace femto
