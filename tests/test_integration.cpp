// Cross-module integration and property tests.
//
//  - Full option-matrix sweep of the compiler on a mixed term set: counting
//    invariants hold for every (transform x sorting x compression) combo.
//  - GTSP GA versus brute force on small instances.
//  - Random excitation sets: the hybrid plan never breaks a later
//    compressed term's symmetry (the Sec. III-A safety property).
//  - End-to-end H2: VQE through the *emitted circuit* reaches FCI.
#include <gtest/gtest.h>

#include <algorithm>

#include "chem/fci.hpp"
#include "chem/integrals.hpp"
#include "chem/molecules.hpp"
#include "chem/mo_integrals.hpp"
#include "chem/scf.hpp"
#include "core/compiler.hpp"
#include "encoding/hybrid_plan.hpp"
#include "opt/gtsp.hpp"
#include "sim/statevector.hpp"
#include "transform/linear_encoding.hpp"
#include "vqe/driver.hpp"
#include "vqe/uccsd.hpp"

namespace femto {
namespace {

using fermion::ExcitationTerm;

struct ComboParam {
  core::TransformKind transform;
  core::SortingMode sorting;
  core::CompressionMode compression;
};

class CompilerMatrix : public ::testing::TestWithParam<ComboParam> {};

TEST_P(CompilerMatrix, CountingInvariants) {
  const ComboParam combo = GetParam();
  const std::vector<ExcitationTerm> terms = {
      ExcitationTerm::make_double(6, 7, 0, 1),   // bosonic
      ExcitationTerm::make_double(6, 7, 2, 5),   // hybrid
      ExcitationTerm::make_double(8, 9, 0, 3),   // hybrid
      ExcitationTerm::make_double(4, 9, 0, 2),   // fermionic
      ExcitationTerm::single(8, 2),              // single
  };
  core::CompileOptions opt;
  opt.transform = combo.transform;
  opt.sorting = combo.sorting;
  opt.compression = combo.compression;
  opt.sa_options.steps = 200;
  opt.pso_options.iterations = 15;
  opt.pso_options.particles = 8;
  opt.gtsp_options.generations = 60;
  const auto res = core::compile_vqe(10, terms, opt);
  // Invariants:
  EXPECT_GT(res.model_cnots, 0);
  EXPECT_GE(res.emitted_cnots, res.model_cnots);
  EXPECT_EQ(res.term_order.size(), terms.size());
  EXPECT_EQ(res.ordered_generators.size(), terms.size());
  // term_order is a permutation.
  std::vector<std::size_t> sorted = res.term_order;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i);
  // Circuit references at most as many parameters as terms.
  EXPECT_LE(res.circuit.num_params(), static_cast<int>(terms.size()));
  // Naive upper bound: every term fermionic, no savings.
  int naive = 0;
  const auto jw = transform::LinearEncoding::jordan_wigner(10);
  for (const auto& t : terms) {
    const auto mapped = jw.map(t.generator());
    for (const auto& pt : mapped.terms()) naive += synth::string_cost(pt.string);
  }
  EXPECT_LE(res.model_cnots, naive);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, CompilerMatrix,
    ::testing::Values(
        ComboParam{core::TransformKind::kJordanWigner,
                   core::SortingMode::kNone, core::CompressionMode::kNone},
        ComboParam{core::TransformKind::kJordanWigner,
                   core::SortingMode::kBaseline,
                   core::CompressionMode::kBosonicOnly},
        ComboParam{core::TransformKind::kJordanWigner,
                   core::SortingMode::kAdvanced,
                   core::CompressionMode::kHybrid},
        ComboParam{core::TransformKind::kBravyiKitaev,
                   core::SortingMode::kBaseline,
                   core::CompressionMode::kBosonicOnly},
        ComboParam{core::TransformKind::kBravyiKitaev,
                   core::SortingMode::kAdvanced,
                   core::CompressionMode::kHybrid},
        ComboParam{core::TransformKind::kBaselineGT,
                   core::SortingMode::kBaseline,
                   core::CompressionMode::kBosonicOnly},
        ComboParam{core::TransformKind::kBaselineGT,
                   core::SortingMode::kNone, core::CompressionMode::kNone},
        ComboParam{core::TransformKind::kAdvanced,
                   core::SortingMode::kAdvanced,
                   core::CompressionMode::kHybrid},
        ComboParam{core::TransformKind::kAdvanced,
                   core::SortingMode::kBaseline,
                   core::CompressionMode::kNone}));

TEST(GtspBruteForce, GaMatchesOptimumOnSmallInstances) {
  Rng build_rng(21);
  for (int rep = 0; rep < 6; ++rep) {
    // 5 clusters x 2 vertices: brute force = 5! orders x 2^5 choices.
    opt::GtspInstance inst;
    int next = 0;
    for (int c = 0; c < 5; ++c) inst.clusters.push_back({next++, next++});
    std::vector<double> w(100);
    for (double& v : w) v = build_rng.uniform(0, 10);
    inst.weight = [&w](int a, int b) {
      return w[static_cast<std::size_t>(a * 10 + b)];
    };
    // Brute force.
    std::vector<std::size_t> perm{0, 1, 2, 3, 4};
    double best = -1;
    std::sort(perm.begin(), perm.end());
    do {
      for (int choice = 0; choice < 32; ++choice) {
        double total = 0;
        for (int k = 0; k + 1 < 5; ++k) {
          const int va = inst.clusters[perm[static_cast<std::size_t>(k)]]
                                      [(choice >> perm[static_cast<std::size_t>(k)]) & 1];
          const int vb = inst.clusters[perm[static_cast<std::size_t>(k + 1)]]
                                      [(choice >> perm[static_cast<std::size_t>(k + 1)]) & 1];
          total += inst.weight(va, vb);
        }
        best = std::max(best, total);
      }
    } while (std::next_permutation(perm.begin(), perm.end()));
    Rng rng(17 + rep);
    const auto sol = opt::solve_gtsp_ga(inst, rng);
    EXPECT_NEAR(sol.value, best, 1e-9) << "rep " << rep;
  }
}

TEST(HybridPlanProperty, RandomTermSetsAreSymmetrySafe) {
  Rng rng(33);
  for (int rep = 0; rep < 20; ++rep) {
    const std::size_t n = 12;
    std::vector<ExcitationTerm> terms;
    const int count = 4 + static_cast<int>(rng.index(8));
    for (int k = 0; k < count; ++k) {
      std::size_t p = rng.index(n), q = rng.index(n);
      std::size_t r = rng.index(n), s = rng.index(n);
      if (p == q || r == s) continue;
      terms.push_back(ExcitationTerm::make_double(p, q, r, s));
    }
    if (terms.empty()) continue;
    Rng plan_rng(rep);
    const auto plan = encoding::plan_hybrid_encoding(terms, plan_rng, 16);
    const auto order = plan.compressed_order();
    for (std::size_t a = 0; a < order.size(); ++a)
      for (std::size_t b = a + 1; b < order.size(); ++b)
        EXPECT_FALSE(terms[order[a]].breaks_symmetry_of(terms[order[b]]));
    // Segment sizes account for every term exactly once.
    EXPECT_EQ(plan.full_order().size(), terms.size());
  }
}

TEST(EndToEnd, H2VqeThroughEmittedCircuitReachesFci) {
  const auto mol = chem::make_h2(1.4);
  auto basis = chem::build_sto3g(mol);
  chem::normalize_basis(basis);
  const auto ints = chem::compute_integrals(mol, basis);
  const auto scf = chem::run_rhf(mol, ints);
  const auto mo = chem::transform_to_mo(mol, ints, scf);
  const auto so = chem::to_spin_orbitals(mo);
  const auto fci = chem::run_fci(so);

  auto terms = vqe::uccsd_hmp2_terms(so);
  core::CompileOptions opt;
  opt.transform = core::TransformKind::kJordanWigner;
  opt.compression = core::CompressionMode::kNone;
  opt.sorting = core::SortingMode::kBaseline;
  const auto res = core::compile_vqe(so.n, terms, opt);

  const auto enc = transform::LinearEncoding::jordan_wigner(so.n);
  const pauli::PauliSum hq = enc.map(chem::build_hamiltonian(so));
  const std::size_t hf_index = (std::size_t{1} << so.nelec) - 1;

  // Optimize theta by evaluating the *circuit* (golden-section-free: just
  // coarse grid + refinement on the dominant double amplitude).
  const auto circuit_energy = [&](const std::vector<double>& theta) {
    sim::StateVector sv = sim::StateVector::basis_state(so.n, hf_index);
    sv.apply_circuit(res.circuit, theta);
    return sv.expectation(hq).real();
  };
  std::vector<double> theta(res.ordered_generators.size(), 0.0);
  // Coordinate descent, enough for this 3-parameter problem.
  double e = circuit_energy(theta);
  for (int round = 0; round < 30; ++round) {
    for (std::size_t k = 0; k < theta.size(); ++k) {
      for (double step : {0.1, -0.1, 0.01, -0.01, 0.001, -0.001}) {
        std::vector<double> cand = theta;
        cand[k] += step;
        const double ec = circuit_energy(cand);
        if (ec < e) {
          e = ec;
          theta = cand;
        }
      }
    }
  }
  EXPECT_NEAR(e, fci.energy, 2e-4);
  EXPECT_LT(e, scf.total_energy);
}

TEST(EdgeCases, EmptyAndSingletonCompiles) {
  core::CompileOptions opt;
  const auto empty = core::compile_vqe(4, {}, opt);
  EXPECT_EQ(empty.model_cnots, 0);
  EXPECT_EQ(empty.emitted_cnots, 0);
  EXPECT_TRUE(empty.term_order.empty());

  const auto single = core::compile_vqe(
      6, {ExcitationTerm::make_double(4, 5, 0, 1)}, opt);
  EXPECT_EQ(single.model_cnots, 2);  // one bosonic block
}

TEST(EdgeCases, SinglesOnlyAnsatz) {
  const std::vector<ExcitationTerm> terms = {ExcitationTerm::single(4, 0),
                                             ExcitationTerm::single(5, 1)};
  core::CompileOptions opt;
  const auto res = core::compile_vqe(6, terms, opt);
  // Each single = 2 strings of weight (gap+1): supports {0..4} weight 5:
  // cost 2*(2*4) - savings; must be positive and emitted >= model.
  EXPECT_GT(res.model_cnots, 0);
  EXPECT_GE(res.emitted_cnots, res.model_cnots);
}

}  // namespace
}  // namespace femto
