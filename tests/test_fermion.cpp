// Tests for fermionic operator algebra and excitation-term classification.
#include <gtest/gtest.h>

#include "fermion/excitation.hpp"
#include "fermion/operators.hpp"

namespace femto::fermion {
namespace {

TEST(FermionOperator, AnticommutatorSameMode) {
  // {a_0, a_0^dag} = 1
  const FermionOperator a = FermionOperator::ladder(0, false);
  const FermionOperator ad = FermionOperator::ladder(0, true);
  const FermionOperator anti = (a * ad + ad * a).normal_ordered();
  ASSERT_EQ(anti.terms().size(), 1u);
  EXPECT_TRUE(anti.terms()[0].ops.empty());
  EXPECT_NEAR(anti.terms()[0].coefficient.real(), 1.0, 1e-12);
}

TEST(FermionOperator, AnticommutatorDifferentModes) {
  // {a_0, a_1^dag} = 0
  const FermionOperator a = FermionOperator::ladder(0, false);
  const FermionOperator bd = FermionOperator::ladder(1, true);
  EXPECT_TRUE((a * bd + bd * a).normal_ordered().empty());
  // {a_0, a_1} = 0
  const FermionOperator b = FermionOperator::ladder(1, false);
  EXPECT_TRUE((a * b + b * a).normal_ordered().empty());
}

TEST(FermionOperator, PauliExclusion) {
  // a_0^dag a_0^dag = 0
  const FermionOperator ad = FermionOperator::ladder(0, true);
  EXPECT_TRUE((ad * ad).normal_ordered().empty());
}

TEST(FermionOperator, NumberOperatorIdempotent) {
  // n^2 = n for n = a^dag a
  const FermionOperator n =
      FermionOperator::ladder(0, true) * FermionOperator::ladder(0, false);
  const FermionOperator n2 = (n * n).normal_ordered();
  const FermionOperator n1 = n.normal_ordered();
  // n^2 - n = 0
  EXPECT_TRUE((n2 - n1).normal_ordered().empty());
}

TEST(FermionOperator, AdjointReversesAndFlips) {
  const FermionOperator t = FermionOperator::term(
      {0.0, 2.0}, {{3, true}, {1, false}});
  const FermionOperator td = t.adjoint();
  ASSERT_EQ(td.terms().size(), 1u);
  const FermionTerm& term = td.terms()[0];
  EXPECT_NEAR(term.coefficient.imag(), -2.0, 1e-12);
  ASSERT_EQ(term.ops.size(), 2u);
  EXPECT_EQ(term.ops[0].mode, 1u);
  EXPECT_TRUE(term.ops[0].dagger);
  EXPECT_EQ(term.ops[1].mode, 3u);
  EXPECT_FALSE(term.ops[1].dagger);
}

TEST(FermionOperator, NormalOrderingPreservesOperator) {
  // a_1 a_0^dag  ->  -a_0^dag a_1 (no contraction, different modes)
  const FermionOperator op =
      FermionOperator::ladder(1, false) * FermionOperator::ladder(0, true);
  const FermionOperator no = op.normal_ordered();
  ASSERT_EQ(no.terms().size(), 1u);
  EXPECT_NEAR(no.terms()[0].coefficient.real(), -1.0, 1e-12);
  EXPECT_TRUE(no.terms()[0].ops[0].dagger);
  EXPECT_EQ(no.terms()[0].ops[0].mode, 0u);
}

TEST(Excitation, SpinPairPredicate) {
  EXPECT_TRUE(is_spin_pair(0, 1));
  EXPECT_TRUE(is_spin_pair(3, 2));
  EXPECT_FALSE(is_spin_pair(1, 2));
  EXPECT_FALSE(is_spin_pair(0, 2));
  EXPECT_FALSE(is_spin_pair(2, 2));
}

TEST(Excitation, Classification) {
  // Bosonic: creation pair (4,5), annihilation pair (0,1).
  const auto bosonic = ExcitationTerm::make_double(4, 5, 0, 1);
  EXPECT_EQ(bosonic.classification(), ExcitationClass::kBosonic);
  // Hybrid: creation pair (4,5), annihilation (0,2) not a pair.
  const auto hybrid = ExcitationTerm::make_double(4, 5, 0, 2);
  EXPECT_EQ(hybrid.classification(), ExcitationClass::kHybrid);
  // Fermionic: neither side a pair.
  const auto fermionic = ExcitationTerm::make_double(4, 6, 0, 2);
  EXPECT_EQ(fermionic.classification(), ExcitationClass::kFermionic);
  // Singles are always fermionic.
  EXPECT_EQ(ExcitationTerm::single(4, 0).classification(),
            ExcitationClass::kFermionic);
}

TEST(Excitation, IndividualIndices) {
  const auto hybrid = ExcitationTerm::make_double(4, 5, 0, 2);
  const auto idx = hybrid.individual_indices();
  ASSERT_EQ(idx.size(), 2u);
  EXPECT_EQ(idx[0], 0u);
  EXPECT_EQ(idx[1], 2u);
  const auto bosonic = ExcitationTerm::make_double(4, 5, 0, 1);
  EXPECT_TRUE(bosonic.individual_indices().empty());
}

TEST(Excitation, BreaksSymmetryPredicate) {
  // Paper appendix example: h0 = a+9 a+12 a3 a4 is hybrid? (9,12) not a
  // pair, (3,4) not a pair (3 is odd). Use explicit small cases instead:
  // h1 acts individually on {0, 2}; h2's compressible pair is (2,3).
  const auto h1 = ExcitationTerm::make_double(4, 5, 0, 2);
  const auto h2 = ExcitationTerm::make_double(2, 3, 6, 8);
  EXPECT_TRUE(h1.breaks_symmetry_of(h2));   // h1 touches index 2
  EXPECT_FALSE(h2.breaks_symmetry_of(h1));  // h2 individual = {6,8}, pair (4,5)
  // A bosonic term breaks nothing.
  const auto b = ExcitationTerm::make_double(0, 1, 2, 3);
  EXPECT_FALSE(b.breaks_symmetry_of(h1));
  EXPECT_FALSE(b.breaks_symmetry_of(h2));
}

TEST(Excitation, GeneratorIsAntiHermitian) {
  const auto t = ExcitationTerm::make_double(4, 5, 0, 1);
  const FermionOperator g = t.generator();
  // g + g^dag = 0
  EXPECT_TRUE((g + g.adjoint()).normal_ordered().empty());
}

}  // namespace
}  // namespace femto::fermion
