// Tests for the quantum-chemistry substrate: integrals, SCF, MP2, FCI.
//
// Anchors: Szabo & Ostlund's H2/STO-3G at R = 1.4 a0 (E_RHF = -1.1167 Ha),
// standard STO-3G SCF energies for H2O / LiH / HF / BeH2 / NH3, and
// internal consistency (FCI below RHF by a sane correlation energy; FCI in
// determinant basis == Lanczos on the JW-encoded qubit Hamiltonian).
#include <gtest/gtest.h>

#include "chem/fci.hpp"
#include "chem/integrals.hpp"
#include "chem/mo_integrals.hpp"
#include "chem/molecules.hpp"
#include "chem/scf.hpp"
#include "sim/lanczos.hpp"
#include "transform/linear_encoding.hpp"

namespace femto::chem {
namespace {

struct Pipeline {
  Molecule mol;
  IntegralTables ints;
  ScfResult scf;
};

[[nodiscard]] Pipeline run_pipeline(Molecule mol) {
  std::vector<BasisFunction> basis = build_sto3g(mol);
  normalize_basis(basis);
  IntegralTables ints = compute_integrals(mol, basis);
  ScfResult scf = run_rhf(mol, ints);
  return {std::move(mol), std::move(ints), std::move(scf)};
}

TEST(Boys, KnownValues) {
  // F_0(0) = 1, F_1(0) = 1/3; F_0(T) = sqrt(pi/T)/2 erf(sqrt(T)).
  const auto f0 = boys(2, 0.0);
  EXPECT_NEAR(f0[0], 1.0, 1e-14);
  EXPECT_NEAR(f0[1], 1.0 / 3.0, 1e-14);
  EXPECT_NEAR(f0[2], 0.2, 1e-14);
  const double t = 3.7;
  const auto f = boys(4, t);
  EXPECT_NEAR(f[0], 0.5 * std::sqrt(M_PI / t) * std::erf(std::sqrt(t)), 1e-12);
  // Both branches (series+downward for T<35, closed form+upward for T>35)
  // must match the erf closed form for F_0 and satisfy the exact recurrence
  // F_{m+1} = ((2m+1) F_m - e^-T) / (2T).
  for (const double tt : {30.0, 34.9, 35.1, 40.0}) {
    const auto ff = boys(3, tt);
    EXPECT_NEAR(ff[0], 0.5 * std::sqrt(M_PI / tt) * std::erf(std::sqrt(tt)),
                1e-12);
    for (int m = 0; m < 3; ++m)
      EXPECT_NEAR(ff[static_cast<std::size_t>(m) + 1],
                  ((2 * m + 1) * ff[static_cast<std::size_t>(m)] -
                   std::exp(-tt)) /
                      (2 * tt),
                  1e-12);
  }
}

TEST(Integrals, OverlapNormalizedDiagonal) {
  const Molecule mol = make_h2o();
  std::vector<BasisFunction> basis = build_sto3g(mol);
  normalize_basis(basis);
  const IntegralTables ints = compute_integrals(mol, basis);
  ASSERT_EQ(ints.n, 7u);
  for (std::size_t i = 0; i < ints.n; ++i)
    EXPECT_NEAR(ints.overlap(i, i), 1.0, 1e-10);
  // Overlap symmetric positive-definite with eigenvalues in (0, 2).
  const EigenResult eig = jacobi_eigensymmetric(ints.overlap);
  for (double v : eig.values) {
    EXPECT_GT(v, 0.0);
    EXPECT_LT(v, 2.5);
  }
}

TEST(Integrals, EriPermutationalSymmetry) {
  const Molecule mol = make_lih();
  std::vector<BasisFunction> basis = build_sto3g(mol);
  normalize_basis(basis);
  const IntegralTables ints = compute_integrals(mol, basis);
  const std::size_t n = ints.n;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t k = 0; k < n; ++k)
        for (std::size_t l = 0; l < n; ++l) {
          const double v = ints.eri_at(i, j, k, l);
          EXPECT_NEAR(v, ints.eri_at(j, i, k, l), 1e-10);
          EXPECT_NEAR(v, ints.eri_at(i, j, l, k), 1e-10);
          EXPECT_NEAR(v, ints.eri_at(k, l, i, j), 1e-10);
        }
}

TEST(Scf, H2SzaboOstlundAnchor) {
  // Szabo & Ostlund Table 3.5: H2/STO-3G at R = 1.4 a0,
  // E_total = -1.1167 Hartree.
  const Pipeline p = run_pipeline(make_h2(1.4));
  ASSERT_TRUE(p.scf.converged);
  EXPECT_NEAR(p.scf.total_energy, -1.1167, 2e-4);
}

TEST(Scf, WaterSto3gEnergyBand) {
  // Literature STO-3G RHF water energies at near-equilibrium geometries sit
  // around -74.96 Ha.
  const Pipeline p = run_pipeline(make_h2o());
  ASSERT_TRUE(p.scf.converged);
  EXPECT_NEAR(p.scf.total_energy, -74.963, 0.01);
  EXPECT_EQ(p.scf.num_occupied, 5u);
}

TEST(Scf, OtherMoleculesConvergeInSaneBands) {
  const Pipeline lih = run_pipeline(make_lih());
  ASSERT_TRUE(lih.scf.converged);
  EXPECT_NEAR(lih.scf.total_energy, -7.86, 0.02);

  const Pipeline hf = run_pipeline(make_hf());
  ASSERT_TRUE(hf.scf.converged);
  EXPECT_NEAR(hf.scf.total_energy, -98.57, 0.02);

  const Pipeline beh2 = run_pipeline(make_beh2());
  ASSERT_TRUE(beh2.scf.converged);
  EXPECT_NEAR(beh2.scf.total_energy, -15.56, 0.02);

  const Pipeline nh3 = run_pipeline(make_nh3());
  ASSERT_TRUE(nh3.scf.converged);
  EXPECT_NEAR(nh3.scf.total_energy, -55.45, 0.03);
}

TEST(Mp2, NegativeCorrelationEnergy) {
  const Pipeline p = run_pipeline(make_h2o());
  const MoIntegrals mo = transform_to_mo(p.mol, p.ints, p.scf);
  const double e2 = mp2_energy(mo);
  EXPECT_LT(e2, 0.0);
  EXPECT_GT(e2, -0.1);  // STO-3G water MP2 corr ~ -0.036 Ha
  EXPECT_NEAR(e2, -0.036, 0.008);
}

TEST(MoIntegrals, FockDiagonalInMoBasis) {
  // In the MO basis, h_pq + sum_i <pi||qi> must be diagonal with the
  // orbital energies on the diagonal (canonical HF condition).
  const Pipeline p = run_pipeline(make_h2o());
  const MoIntegrals mo = transform_to_mo(p.mol, p.ints, p.scf);
  const SpinOrbitalIntegrals so = to_spin_orbitals(mo);
  for (std::size_t pq = 0; pq < so.n; ++pq) {
    for (std::size_t rs = 0; rs < so.n; ++rs) {
      double fock = so.h_at(pq, rs);
      for (std::size_t i = 0; i < so.nelec; ++i)
        fock += so.anti_at(pq, i, rs, i);
      if (pq == rs)
        EXPECT_NEAR(fock, so.orbital_energies[pq], 1e-6);
      else
        EXPECT_NEAR(fock, 0.0, 1e-6);
    }
  }
}

TEST(Fci, H2ExactEnergy) {
  // H2/STO-3G FCI at 1.4 a0: E ~ -1.1372 Ha (textbook value ~ -1.13728).
  const Pipeline p = run_pipeline(make_h2(1.4));
  const MoIntegrals mo = transform_to_mo(p.mol, p.ints, p.scf);
  const SpinOrbitalIntegrals so = to_spin_orbitals(mo);
  const FciResult fci = run_fci(so);
  EXPECT_TRUE(fci.converged);
  EXPECT_EQ(fci.dimension, 4u);
  EXPECT_NEAR(fci.energy, -1.1372, 5e-4);
  EXPECT_LT(fci.energy, p.scf.total_energy);
}

TEST(Fci, MatchesQubitLanczosForH2) {
  const Pipeline p = run_pipeline(make_h2(1.4));
  const MoIntegrals mo = transform_to_mo(p.mol, p.ints, p.scf);
  const SpinOrbitalIntegrals so = to_spin_orbitals(mo);
  const FciResult fci = run_fci(so);
  // Independent path: JW-encode the full Hamiltonian and Lanczos the qubit
  // space (which spans every particle sector -- ground state of H2 lies in
  // the N=2 sector for this Hamiltonian).
  const fermion::FermionOperator h = build_hamiltonian(so);
  const auto enc = transform::LinearEncoding::jordan_wigner(so.n);
  const auto res = sim::lanczos_ground_energy(enc.map(h), so.n);
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(res.ground_energy, fci.energy, 1e-6);
}

TEST(Fci, MatchesQubitLanczosForLih) {
  const Pipeline p = run_pipeline(make_lih());
  const MoIntegrals mo = transform_to_mo(p.mol, p.ints, p.scf);
  const SpinOrbitalIntegrals so = to_spin_orbitals(mo);
  const FciResult fci = run_fci(so);
  EXPECT_TRUE(fci.converged);
  EXPECT_LT(fci.energy, p.scf.total_energy);
  // The 12-qubit Fock space spans every electron count, and for LiH/STO-3G
  // other sectors dip below the neutral ground state. Penalize particle
  // number to select the N = 4 sector: H' = H + lambda (N - nelec)^2.
  fermion::FermionOperator number;
  for (std::size_t i = 0; i < so.n; ++i)
    number = number + fermion::FermionOperator::term({1.0, 0.0},
                                                     {{i, true}, {i, false}});
  const fermion::FermionOperator dev =
      number - fermion::FermionOperator::identity(
                   {static_cast<double>(so.nelec), 0.0});
  const fermion::FermionOperator h =
      build_hamiltonian(so) + pauli::Complex(2.0, 0.0) * (dev * dev);
  const auto enc = transform::LinearEncoding::bravyi_kitaev(so.n);
  const auto res = sim::lanczos_ground_energy(enc.map(h), so.n, 300);
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(res.ground_energy, fci.energy, 1e-6);
}

TEST(Hamiltonian, HartreeFockExpectationMatchesScf) {
  // <HF| H |HF> must equal the SCF total energy.
  const Pipeline p = run_pipeline(make_h2o());
  const MoIntegrals mo = transform_to_mo(p.mol, p.ints, p.scf);
  const SpinOrbitalIntegrals so = to_spin_orbitals(mo);
  double e = so.nuclear_repulsion;
  for (std::size_t i = 0; i < so.nelec; ++i) e += so.h_at(i, i);
  for (std::size_t i = 0; i < so.nelec; ++i)
    for (std::size_t j = i + 1; j < so.nelec; ++j) e += so.anti_at(i, j, i, j);
  EXPECT_NEAR(e, p.scf.total_energy, 1e-8);
}

}  // namespace
}  // namespace femto::chem
