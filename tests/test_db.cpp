// Tests for the persistent compilation database (src/db/) and the
// SynthesisCache fixes that ride along with it.
//
// The load-bearing property is the bit-identity contract: a circuit served
// from the canonical key equals fresh synthesis gate-for-gate, with the
// database enabled, disabled, cold, or warm -- and regardless of cache
// budget, eviction, or thread interleaving. The canonical-key property
// tests pin the exact scope of key sharing: keys agree on permuted /
// relabeled inputs EXACTLY when the synthesized circuits agree.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "chem/integrals.hpp"
#include "common/failpoint.hpp"
#include "chem/mo_integrals.hpp"
#include "chem/molecules.hpp"
#include "chem/scf.hpp"
#include "common/rng.hpp"
#include "core/pipeline.hpp"
#include "db/canonical.hpp"
#include "db/database.hpp"
#include "synth/synthesis_cache.hpp"
#include "vqe/uccsd.hpp"

namespace femto {
namespace {

using synth::EntanglerKind;
using synth::MergePolicy;
using synth::RotationBlock;

RotationBlock block(const std::string& letters, std::size_t target,
                    double angle, int param = -1) {
  RotationBlock b;
  b.string = pauli::PauliString::from_string(letters);
  b.target = target;
  b.angle_coeff = angle;
  b.param = param;
  return b;
}

/// Fixed pool of distinct 4-qubit blocks the randomized tests draw from.
const std::vector<RotationBlock>& pool() {
  static const std::vector<RotationBlock> blocks = {
      block("XXYZ", 1, 0.3),
      block("ZZII", 0, 0.7),
      block("IXXY", 2, 0.3),
      block("YIIX", 0, -0.25, 2),
  };
  return blocks;
}

std::vector<RotationBlock> random_sequence(Rng& rng) {
  std::vector<RotationBlock> seq;
  const std::size_t len = 1 + rng.index(3);
  for (std::size_t k = 0; k < len; ++k) seq.push_back(pool()[rng.index(4)]);
  return seq;
}

std::vector<std::size_t> random_permutation(std::size_t n, Rng& rng) {
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  for (std::size_t i = n; i > 1; --i) std::swap(perm[i - 1], perm[rng.index(i)]);
  return perm;
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Builds a small database file holding every pool block as a 1-sequence
/// plus one 3-block sequence; returns its path.
std::string build_small_db(const std::string& name) {
  db::DatabaseBuilder builder;
  for (const RotationBlock& b : pool()) {
    const std::vector<RotationBlock> seq = {b};
    builder.store(4, seq, MergePolicy::kMerge, EntanglerKind::kCnot,
                  synth::synthesize_sequence(4, seq));
  }
  const std::vector<RotationBlock> seq = {pool()[0], pool()[1], pool()[2]};
  builder.store(4, seq, MergePolicy::kMerge, EntanglerKind::kCnot,
                synth::synthesize_sequence(4, seq));
  const std::string path = temp_path(name);
  EXPECT_EQ(builder.write(path), "");
  return path;
}

// ---- canonical keys -------------------------------------------------------

TEST(CanonicalKey, SignedZeroAnglesShareOneKey) {
  const std::vector<RotationBlock> pos = {block("XYZI", 1, 0.0)};
  const std::vector<RotationBlock> neg = {block("XYZI", 1, -0.0)};
  EXPECT_EQ(db::canonical_key(4, pos, MergePolicy::kMerge, EntanglerKind::kCnot),
            db::canonical_key(4, neg, MergePolicy::kMerge, EntanglerKind::kCnot));
  // ...and the merge is sound: the synthesized circuits agree exactly.
  EXPECT_EQ(synth::synthesize_sequence(4, pos).gates(),
            synth::synthesize_sequence(4, neg).gates());
}

TEST(CanonicalKey, DistinguishesEverySynthesisInput) {
  const std::vector<RotationBlock> base = {block("XXYZ", 1, 0.3)};
  const auto key = [&](const std::vector<RotationBlock>& s,
                       MergePolicy p = MergePolicy::kMerge,
                       EntanglerKind e = EntanglerKind::kCnot) {
    return db::canonical_key(4, s, p, e);
  };
  EXPECT_NE(key(base), key({block("XXYZ", 1, 0.4)}));       // angle
  EXPECT_NE(key(base), key({block("XXYZ", 2, 0.3)}));       // target
  EXPECT_NE(key(base), key({block("XXYZ", 1, 0.3, 0)}));    // parameter
  EXPECT_NE(key(base), key({block("XXYZ", 1, 0.3, 1)}));    // parameter index
  EXPECT_NE(key(base), key(base, MergePolicy::kNone));      // policy
  EXPECT_NE(key(base), key(base, MergePolicy::kMerge,
                           EntanglerKind::kXX));             // native gate
}

TEST(CanonicalKey, RoundTripsThroughDecodeKey) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const std::vector<RotationBlock> seq = random_sequence(rng);
    const std::string key =
        db::canonical_key(4, seq, MergePolicy::kMerge, EntanglerKind::kCnot);
    const auto decoded = db::decode_key(key);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->n, 4u);
    EXPECT_EQ(decoded->policy, MergePolicy::kMerge);
    EXPECT_EQ(decoded->native, EntanglerKind::kCnot);
    ASSERT_EQ(decoded->seq.size(), seq.size());
    // Re-encoding the decoded sequence reproduces the key byte-for-byte,
    // and re-synthesis reproduces the circuit gate-for-gate: the key is a
    // faithful, invertible normal form (what lets femto-db verify every
    // stored artifact against fresh synthesis).
    EXPECT_EQ(db::canonical_key(decoded->n, decoded->seq, decoded->policy,
                                decoded->native),
              key);
    EXPECT_EQ(synth::synthesize_sequence(decoded->n, decoded->seq,
                                         decoded->policy, decoded->native)
                  .gates(),
              synth::synthesize_sequence(4, seq).gates());
  }
}

TEST(CanonicalKey, RejectsMalformedBytes) {
  const std::vector<RotationBlock> seq = {block("XXYZ", 1, 0.3)};
  std::string key =
      db::canonical_key(4, seq, MergePolicy::kMerge, EntanglerKind::kCnot);
  EXPECT_FALSE(db::decode_key("").has_value());
  EXPECT_FALSE(db::decode_key(key.substr(0, key.size() - 1)).has_value());
  EXPECT_FALSE(db::decode_key(key + "x").has_value());
  std::string bad_policy = key;
  bad_policy[8] = 9;  // policy enum out of range
  EXPECT_FALSE(db::decode_key(bad_policy).has_value());
}

TEST(CanonicalKey, PermutedBlockOrderSharesKeyExactlyWhenCircuitsAgree) {
  // Swapping two IDENTICAL blocks is a representational no-op: same key,
  // same circuit. Swapping two DIFFERENT blocks changes the synthesis
  // input: different key and a genuinely different circuit.
  const RotationBlock a = pool()[0], b = pool()[1];
  const std::vector<std::pair<std::vector<RotationBlock>,
                              std::vector<RotationBlock>>> cases = {
      {{a, a}, {a, a}},  // identical swap
      {{a, b}, {b, a}},  // distinct swap
  };
  for (const auto& [x, y] : cases) {
    const bool keys_equal =
        db::canonical_key(4, x, MergePolicy::kMerge, EntanglerKind::kCnot) ==
        db::canonical_key(4, y, MergePolicy::kMerge, EntanglerKind::kCnot);
    const bool circuits_equal = synth::synthesize_sequence(4, x).gates() ==
                                synth::synthesize_sequence(4, y).gates();
    EXPECT_EQ(keys_equal, circuits_equal);
  }
}

TEST(CanonicalKey, RelabeledInputsShareKeyExactlyWhenCircuitsAgree) {
  // The pinned scope of canonical sharing: across qubit relabelings of the
  // same sequence, keys agree exactly when the synthesized circuits do.
  // (The synthesizer's emission order is label-dependent, so a nontrivial
  // relabeling of the support changes the circuit -- and must change the
  // key, or the database would serve a wrong circuit.)
  Rng rng(11);
  for (int trial = 0; trial < 40; ++trial) {
    const std::vector<RotationBlock> seq = random_sequence(rng);
    const std::vector<std::size_t> perm = random_permutation(4, rng);
    const std::vector<RotationBlock> relabeled =
        db::relabel_sequence(seq, perm);
    const bool keys_equal =
        db::canonical_key(4, seq, MergePolicy::kMerge, EntanglerKind::kCnot) ==
        db::canonical_key(4, relabeled, MergePolicy::kMerge,
                          EntanglerKind::kCnot);
    const bool circuits_equal =
        synth::synthesize_sequence(4, seq).gates() ==
        synth::synthesize_sequence(4, relabeled).gates();
    EXPECT_EQ(keys_equal, circuits_equal);
  }
}

TEST(CanonicalKey, OrbitSignatureIsRelabelingInvariant) {
  Rng rng(13);
  for (int trial = 0; trial < 40; ++trial) {
    const std::vector<RotationBlock> seq = random_sequence(rng);
    const std::vector<std::size_t> perm = random_permutation(4, rng);
    EXPECT_EQ(db::orbit_signature(4, seq, MergePolicy::kMerge,
                                  EntanglerKind::kCnot),
              db::orbit_signature(4, db::relabel_sequence(seq, perm),
                                  MergePolicy::kMerge, EntanglerKind::kCnot));
  }
  // ...but still separates genuinely different sequences.
  EXPECT_NE(db::orbit_signature(4, {pool()[0]}, MergePolicy::kMerge,
                                EntanglerKind::kCnot),
            db::orbit_signature(4, {pool()[0], pool()[1]}, MergePolicy::kMerge,
                                EntanglerKind::kCnot));
}

// ---- database file --------------------------------------------------------

TEST(Database, RoundTripsEveryStoredCircuit) {
  const std::string path = build_small_db("roundtrip.fdb");
  std::string err;
  const auto database = db::Database::open(path, &err);
  ASSERT_TRUE(database.has_value()) << err;
  EXPECT_EQ(database->entry_count(), 5u);
  for (const RotationBlock& b : pool()) {
    const std::vector<RotationBlock> seq = {b};
    const auto served = database->load(4, seq, MergePolicy::kMerge,
                                       EntanglerKind::kCnot);
    ASSERT_TRUE(served.has_value());
    EXPECT_EQ(served->gates(), synth::synthesize_sequence(4, seq).gates());
  }
  // Absent keys miss instead of aliasing.
  EXPECT_FALSE(database
                   ->load(4, {block("XYZI", 0, 0.9)}, MergePolicy::kMerge,
                          EntanglerKind::kCnot)
                   .has_value());
  // Same sequence under a different policy/native gate is a different key.
  EXPECT_FALSE(database
                   ->load(4, {pool()[0]}, MergePolicy::kNone,
                          EntanglerKind::kCnot)
                   .has_value());
}

TEST(Database, AppendWorkflowKeepsExistingEntries) {
  const std::string path = build_small_db("append_base.fdb");
  std::string err;
  const auto base = db::Database::open(path, &err);
  ASSERT_TRUE(base.has_value()) << err;

  db::DatabaseBuilder builder;
  builder.merge_from(*base);
  const std::vector<RotationBlock> extra = {block("XYZI", 0, 0.9)};
  builder.store(4, extra, MergePolicy::kMerge, EntanglerKind::kCnot,
                synth::synthesize_sequence(4, extra));
  const std::string merged_path = temp_path("append_merged.fdb");
  ASSERT_EQ(builder.write(merged_path), "");

  const auto merged = db::Database::open(merged_path, &err);
  ASSERT_TRUE(merged.has_value()) << err;
  EXPECT_EQ(merged->entry_count(), base->entry_count() + 1);
  for (const RotationBlock& b : pool()) {
    const std::vector<RotationBlock> seq = {b};
    const auto served =
        merged->load(4, seq, MergePolicy::kMerge, EntanglerKind::kCnot);
    ASSERT_TRUE(served.has_value());
    EXPECT_EQ(served->gates(), synth::synthesize_sequence(4, seq).gates());
  }
  EXPECT_TRUE(merged->load(4, extra, MergePolicy::kMerge, EntanglerKind::kCnot)
                  .has_value());
}

TEST(Database, RejectsZeroLengthFile) {
  const std::string path = temp_path("zero.fdb");
  write_file(path, "");
  std::string err;
  EXPECT_FALSE(db::Database::open(path, &err).has_value());
  EXPECT_NE(err.find("zero-length"), std::string::npos) << err;
}

TEST(Database, RejectsGarbageMagic) {
  const std::string path = temp_path("garbage.fdb");
  write_file(path, std::string(256, 'q'));
  std::string err;
  EXPECT_FALSE(db::Database::open(path, &err).has_value());
  EXPECT_NE(err.find("not a femto-db database"), std::string::npos) << err;
}

TEST(Database, RejectsTruncatedFile) {
  const std::string path = build_small_db("truncate.fdb");
  const std::string bytes = read_file(path);
  ASSERT_GT(bytes.size(), 100u);
  // Cut mid-values: the recorded file size no longer matches.
  write_file(path, bytes.substr(0, bytes.size() - 40));
  std::string err;
  EXPECT_FALSE(db::Database::open(path, &err).has_value());
  EXPECT_NE(err.find("truncated"), std::string::npos) << err;
  // Cut inside the fixed header.
  write_file(path, bytes.substr(0, 20));
  EXPECT_FALSE(db::Database::open(path, &err).has_value());
  EXPECT_NE(err.find("truncated header"), std::string::npos) << err;
}

TEST(Database, RejectsCorruptedSection) {
  const std::string path = build_small_db("corrupt.fdb");
  std::string bytes = read_file(path);
  bytes[bytes.size() - 5] ^= 0x40;  // flip one bit in the last section
  write_file(path, bytes);
  std::string err;
  EXPECT_FALSE(db::Database::open(path, &err).has_value());
  EXPECT_NE(err.find("checksum mismatch"), std::string::npos) << err;
}

TEST(Database, RejectsFormatVersionMismatch) {
  const std::string path = build_small_db("version.fdb");
  std::string bytes = read_file(path);
  bytes[8] = 99;  // format version field
  write_file(path, bytes);
  std::string err;
  EXPECT_FALSE(db::Database::open(path, &err).has_value());
  EXPECT_NE(err.find("format version mismatch"), std::string::npos) << err;
}

TEST(Database, RejectsSynthesisContractMismatch) {
  const std::string path = build_small_db("contract.fdb");
  std::string bytes = read_file(path);
  bytes[12] = 99;  // synthesis contract field
  write_file(path, bytes);
  std::string err;
  EXPECT_FALSE(db::Database::open(path, &err).has_value());
  EXPECT_NE(err.find("synthesis contract mismatch"), std::string::npos) << err;
}

TEST(Database, RejectsCorruptedHeader) {
  const std::string path = build_small_db("header.fdb");
  std::string bytes = read_file(path);
  bytes[25] ^= 0x01;  // entry count field: header crc must catch it
  write_file(path, bytes);
  std::string err;
  EXPECT_FALSE(db::Database::open(path, &err).has_value());
  EXPECT_TRUE(err.find("checksum mismatch") != std::string::npos ||
              err.find("inconsistent") != std::string::npos)
      << err;
}

TEST(Database, ConcurrentReadersSeeIdenticalCircuits) {
  const std::string path = build_small_db("concurrent.fdb");
  std::string err;
  const auto database = db::Database::open(path, &err);
  ASSERT_TRUE(database.has_value()) << err;
  std::vector<circuit::QuantumCircuit> expected;
  for (const RotationBlock& b : pool())
    expected.push_back(synth::synthesize_sequence(4, {b}));

  constexpr int kThreads = 8, kRounds = 50;
  std::vector<int> mismatches(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round)
        for (std::size_t i = 0; i < pool().size(); ++i) {
          const auto served = database->load(4, {pool()[i]},
                                             MergePolicy::kMerge,
                                             EntanglerKind::kCnot);
          if (!served.has_value() || served->gates() != expected[i].gates())
            ++mismatches[t];
        }
    });
  for (std::thread& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(mismatches[t], 0);
}

// ---- synthesis cache fixes ------------------------------------------------

TEST(SynthesisCache, HammerMissesMatchUniqueInsertions) {
  // N threads x the same key: exactly one synthesis may win the insert, so
  // misses must equal size() == 1 no matter how the race resolves (the old
  // counter bumped misses on every lost race, so misses could exceed size).
  synth::SynthesisCache cache;
  const std::vector<RotationBlock> seq = {pool()[0], pool()[1]};
  constexpr int kThreads = 16;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&] { (void)cache.synthesize(4, seq); });
  for (std::thread& t : threads) t.join();

  const auto stats = cache.stats();
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(stats.misses, cache.size());
  EXPECT_EQ(stats.hits + stats.misses, static_cast<std::size_t>(kThreads));
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(SynthesisCache, HammerManyKeysStillSatisfiesMissInvariant) {
  synth::SynthesisCache cache;
  constexpr int kThreads = 8, kRounds = 20;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&] {
      for (int round = 0; round < kRounds; ++round)
        for (const RotationBlock& b : pool())
          (void)cache.synthesize(4, {b});
    });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(cache.size(), pool().size());
  EXPECT_EQ(cache.stats().misses, cache.size());
}

TEST(SynthesisCache, EntryBudgetEvictsInInsertionOrder) {
  synth::SynthesisCache cache({/*max_bytes=*/0, /*max_entries=*/2});
  std::vector<circuit::QuantumCircuit> fresh;
  for (const RotationBlock& b : pool()) {
    fresh.push_back(synth::synthesize_sequence(4, {b}));
    EXPECT_EQ(cache.synthesize(4, {b}).gates(), fresh.back().gates());
  }
  const auto stats = cache.stats();
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(stats.evictions, pool().size() - 2);
  EXPECT_EQ(stats.misses, pool().size());
  // Invariant: every inserted entry is either resident or evicted.
  EXPECT_EQ(cache.size() + stats.evictions, stats.misses + stats.l2_hits);
  // Re-requesting an evicted key re-synthesizes the identical circuit.
  EXPECT_EQ(cache.synthesize(4, {pool()[0]}).gates(), fresh[0].gates());
}

TEST(SynthesisCache, TinyByteBudgetStaysBitIdentical) {
  // A budget smaller than one entry evicts immediately; results must still
  // be bit-identical to the unbounded cache (only hit rates may change).
  synth::SynthesisCache bounded({/*max_bytes=*/1, /*max_entries=*/0});
  synth::SynthesisCache unbounded;
  for (int round = 0; round < 2; ++round)
    for (const RotationBlock& b : pool())
      EXPECT_EQ(bounded.synthesize(4, {b}).gates(),
                unbounded.synthesize(4, {b}).gates());
  EXPECT_EQ(bounded.size(), 0u);
  EXPECT_GT(bounded.stats().evictions, 0u);
  EXPECT_EQ(bounded.approx_bytes(), 0u);
}

TEST(SynthesisCache, SetBudgetEvictsImmediately) {
  synth::SynthesisCache cache;
  for (const RotationBlock& b : pool()) (void)cache.synthesize(4, {b});
  EXPECT_EQ(cache.size(), pool().size());
  cache.set_budget({/*max_bytes=*/0, /*max_entries=*/1});
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().evictions, pool().size() - 1);
}

TEST(SynthesisCache, ReadsThroughAttachedStore) {
  // Record a cold run with a DatabaseBuilder, then serve a fresh cache from
  // the written database: every first request is an L2 hit, not a miss, and
  // the served circuits match fresh synthesis gate-for-gate.
  db::DatabaseBuilder builder;
  synth::SynthesisCache cold;
  cold.set_store(&builder);
  for (const RotationBlock& b : pool()) (void)cold.synthesize(4, {b});
  EXPECT_EQ(builder.size(), pool().size());
  EXPECT_EQ(cold.stats().misses, pool().size());
  EXPECT_EQ(cold.stats().l2_hits, 0u);

  const std::string path = temp_path("readthrough.fdb");
  ASSERT_EQ(builder.write(path), "");
  std::string err;
  auto database = db::Database::open(path, &err);
  ASSERT_TRUE(database.has_value()) << err;

  synth::SynthesisCache warm;
  warm.set_store(&*database);
  for (const RotationBlock& b : pool())
    EXPECT_EQ(warm.synthesize(4, {b}).gates(),
              synth::synthesize_sequence(4, {b}).gates());
  EXPECT_EQ(warm.stats().l2_hits, pool().size());
  EXPECT_EQ(warm.stats().misses, 0u);
  // Second pass is pure L1.
  for (const RotationBlock& b : pool()) (void)warm.synthesize(4, {b});
  EXPECT_EQ(warm.stats().hits, pool().size());
}

// ---- pipeline integration -------------------------------------------------

struct Fixture {
  std::size_t n = 0;
  std::vector<fermion::ExcitationTerm> terms;
};

Fixture molecule_terms(const chem::Molecule& mol, std::size_t keep) {
  auto basis = chem::build_sto3g(mol);
  chem::normalize_basis(basis);
  const auto ints = chem::compute_integrals(mol, basis);
  const auto scf = chem::run_rhf(mol, ints);
  const auto mo = chem::transform_to_mo(mol, ints, scf);
  const auto so = chem::to_spin_orbitals(mo);
  Fixture f;
  f.n = so.n;
  f.terms = vqe::uccsd_hmp2_terms(so);
  if (f.terms.size() > keep) f.terms.resize(keep);
  return f;
}

const Fixture& h2() {
  static const Fixture f = molecule_terms(chem::make_h2(), 3);
  return f;
}

core::CompileOptions fast_options() {
  core::CompileOptions o;
  o.coloring_orders = 8;
  o.sa_options = {2.0, 0.05, 150, 0};
  o.pso_options.particles = 8;
  o.pso_options.iterations = 15;
  o.gtsp_options.population = 12;
  o.gtsp_options.generations = 30;
  o.gtsp_options.stagnation_limit = 15;
  return o;
}

void expect_identical(const core::CompileResult& a,
                      const core::CompileResult& b) {
  EXPECT_EQ(a.num_qubits, b.num_qubits);
  EXPECT_EQ(a.model_cnots, b.model_cnots);
  EXPECT_EQ(a.emitted_cnots, b.emitted_cnots);
  EXPECT_EQ(a.term_order, b.term_order);
  EXPECT_EQ(a.circuit.to_string(), b.circuit.to_string());
}

TEST(PipelineDatabase, ResultsAreBitIdenticalColdWarmOnOff) {
  const Fixture& f = h2();
  const core::CompileOptions options = fast_options();
  core::PipelineOptions popt{
      .workers = 2, .restarts = 2, .verify = true};

  // Off: no store at all -- the baseline result.
  core::CompilePipeline off(popt);
  const core::MultiStartResult baseline =
      off.compile_best(f.n, f.terms, options);
  EXPECT_TRUE(baseline.all_verified());

  // Cold: record everything the compile synthesizes.
  db::DatabaseBuilder builder;
  core::CompilePipeline cold(popt);
  cold.set_store(&builder);
  const core::MultiStartResult recorded =
      cold.compile_best(f.n, f.terms, options);
  expect_identical(baseline.best, recorded.best);
  EXPECT_TRUE(recorded.all_verified());
  ASSERT_GT(builder.size(), 0u);
  const std::string path = temp_path("pipeline.fdb");
  ASSERT_EQ(builder.write(path), "");

  // Warm: serve from the database via PipelineOptions.database_path. The
  // result must be bit-identical and verify-on-compile must certify the
  // DB-served circuits like any other.
  core::PipelineOptions warm_opt = popt;
  warm_opt.database_path = path;
  core::CompilePipeline warm(warm_opt);
  ASSERT_NE(warm.database(), nullptr);
  const core::MultiStartResult served =
      warm.compile_best(f.n, f.terms, options);
  expect_identical(baseline.best, served.best);
  EXPECT_TRUE(served.all_verified());
  EXPECT_GT(warm.cache().stats().l2_hits, 0u);
  EXPECT_EQ(warm.cache().stats().misses, 0u);

  // Warm again on the same pipeline: pure L1 now, still identical.
  const core::MultiStartResult again =
      warm.compile_best(f.n, f.terms, options);
  expect_identical(baseline.best, again.best);
}

TEST(PipelineDatabase, BoundedCacheKeepsPipelineResultsIdentical) {
  const Fixture& f = h2();
  const core::CompileOptions options = fast_options();
  core::PipelineOptions popt{.workers = 2, .restarts = 1};
  core::CompilePipeline unbounded(popt);
  core::PipelineOptions tight = popt;
  tight.cache_budget = {/*max_bytes=*/1, /*max_entries=*/0};
  core::CompilePipeline bounded(tight);
  expect_identical(unbounded.compile_best(f.n, f.terms, options).best,
                   bounded.compile_best(f.n, f.terms, options).best);
  EXPECT_EQ(bounded.cache().size(), 0u);
}

TEST(PipelineDatabase, MissingDatabaseFileDiesLoudly) {
  core::PipelineOptions popt;
  popt.database_path = temp_path("does_not_exist.fdb");
  EXPECT_DEATH(core::CompilePipeline{popt},
               "cannot open compilation database");
}

// ---- crash-safe writes (failpoint-driven) ---------------------------------
// DatabaseBuilder::write goes through <path>.tmp.<pid> + fsync + atomic
// rename, so NO failure mode of the write -- short write, failed fsync, or
// the process dying mid-write -- may ever clobber the previous good file.

TEST(CrashSafety, ShortWriteLeavesPreviousDatabaseIntact) {
  const std::string path = build_small_db("crash_short.fdb");
  const std::string before = read_file(path);
  ASSERT_FALSE(before.empty());

  db::DatabaseBuilder builder;
  const std::vector<RotationBlock> seq = {pool()[3]};
  builder.store(4, seq, MergePolicy::kMerge, EntanglerKind::kCnot,
                synth::synthesize_sequence(4, seq));
  ASSERT_EQ(fail::registry().arm("db.write.short:1:1"), "");
  const std::string err = builder.write(path);
  ASSERT_TRUE(fail::registry().disarm("db.write.short"));
  EXPECT_NE(err.find("short write"), std::string::npos) << err;
  EXPECT_NE(err.find("left intact"), std::string::npos) << err;
  EXPECT_EQ(read_file(path), before) << "previous database was clobbered";
  // The torn tmp must not linger.
  EXPECT_TRUE(read_file(path + ".tmp." + std::to_string(::getpid())).empty());

  // Disarmed, the same builder writes fine (over the old file, atomically).
  EXPECT_EQ(builder.write(path), "");
  std::string open_err;
  EXPECT_TRUE(db::Database::open(path, &open_err).has_value()) << open_err;
}

TEST(CrashSafety, FsyncFailureLeavesPreviousDatabaseIntact) {
  const std::string path = build_small_db("crash_fsync.fdb");
  const std::string before = read_file(path);
  db::DatabaseBuilder builder;
  const std::vector<RotationBlock> seq = {pool()[2]};
  builder.store(4, seq, MergePolicy::kMerge, EntanglerKind::kCnot,
                synth::synthesize_sequence(4, seq));
  ASSERT_EQ(fail::registry().arm("db.fsync:1:1"), "");
  const std::string err = builder.write(path);
  ASSERT_TRUE(fail::registry().disarm("db.fsync"));
  EXPECT_FALSE(err.empty());
  EXPECT_EQ(read_file(path), before);
}

TEST(CrashSafety, KillMidWriteLeavesPreviousDatabaseLoadable) {
  const std::string path = build_small_db("crash_kill.fdb");
  const std::string before = read_file(path);
  std::string open_err;
  const auto base = db::Database::open(path, &open_err);
  ASSERT_TRUE(base.has_value()) << open_err;
  const std::size_t entries_before = base->entry_count();

  // The child arms db.write.kill and rewrites the live path: it dies with
  // _Exit(137) mid-write, leaving only a torn tmp file behind.
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ASSERT_EQ(fail::registry().arm("db.write.kill:1:1"), "");
    db::DatabaseBuilder builder;
    builder.merge_from(*base);
    static_cast<void>(builder.write(path));
    ::_exit(0);  // write survived: the failpoint did not fire -- fail below
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 137)
      << "child should have died inside the armed write";

  // The previous database is byte-identical and loads.
  EXPECT_EQ(read_file(path), before);
  const auto after = db::Database::open(path, &open_err);
  ASSERT_TRUE(after.has_value()) << open_err;
  EXPECT_EQ(after->entry_count(), entries_before);
  // Clean up the torn tmp the "crash" left behind.
  std::remove((path + ".tmp." + std::to_string(pid)).c_str());
}

}  // namespace
}  // namespace femto
