// Failure-injection tests: the library's contracts must fire on misuse
// (FEMTO_EXPECTS aborts), and rewrite passes must be idempotent and
// unitary-preserving under stress.
#include <gtest/gtest.h>

#include "circuit/peephole.hpp"
#include "common/rng.hpp"
#include "gf2/bitvec.hpp"
#include "gf2/matrix.hpp"
#include "pauli/pauli_string.hpp"
#include "sim/statevector.hpp"
#include "sim/unitary.hpp"
#include "synth/pauli_exponential.hpp"

namespace femto {
namespace {

using circuit::Gate;
using circuit::QuantumCircuit;

TEST(Contracts, BitVecOutOfRangeAborts) {
  gf2::BitVec v(4);
  EXPECT_DEATH((void)v.get(4), "precondition");
  EXPECT_DEATH(v.set(7, true), "precondition");
}

TEST(Contracts, BitVecSizeMismatchAborts) {
  gf2::BitVec a(4), b(5);
  EXPECT_DEATH((void)(a ^ b), "precondition");
  EXPECT_DEATH((void)a.dot(b), "precondition");
}

TEST(Contracts, MatrixRowAddSelfAborts) {
  gf2::Matrix m = gf2::Matrix::identity(3);
  EXPECT_DEATH(m.add_row(1, 1), "precondition");
}

TEST(Contracts, GateSameQubitTwoQubitAborts) {
  EXPECT_DEATH((void)Gate::cnot(2, 2), "precondition");
  EXPECT_DEATH((void)Gate::swap(0, 0), "precondition");
}

TEST(Contracts, CircuitQubitBoundsAborts) {
  QuantumCircuit c(2);
  EXPECT_DEATH(c.append(Gate::h(2)), "precondition");
  EXPECT_DEATH(c.append(Gate::cnot(0, 3)), "precondition");
}

TEST(Contracts, SynthesisRejectsIdentityTarget) {
  synth::RotationBlock b;
  b.string = pauli::PauliString::from_string("XI");
  b.target = 1;  // identity site
  b.angle_coeff = 0.5;
  EXPECT_DEATH((void)synth::synthesize_sequence(2, {b}), "precondition");
}

TEST(Contracts, StateVectorHermitianExpOnly) {
  sim::StateVector sv(2);
  pauli::PauliString p = pauli::PauliString::from_string("XZ");
  p.set_phase_exponent(p.phase_exponent() + 1);  // i * XZ: not Hermitian
  EXPECT_DEATH(sv.apply_pauli_exp(p, 0.3), "precondition");
}

TEST(PeepholeStress, IdempotentOnRandomCircuits) {
  Rng rng(71);
  for (int rep = 0; rep < 10; ++rep) {
    const std::size_t n = 4;
    QuantumCircuit c(n);
    for (int g = 0; g < 60; ++g) {
      switch (rng.index(8)) {
        case 0: c.append(Gate::h(rng.index(n))); break;
        case 1: c.append(Gate::s(rng.index(n))); break;
        case 2: c.append(Gate::x(rng.index(n))); break;
        case 3: c.append(Gate::rz(rng.index(n), rng.uniform(-2, 2))); break;
        case 4: c.append(Gate::rx(rng.index(n), rng.uniform(-2, 2))); break;
        default: {
          const std::size_t a = rng.index(n);
          const std::size_t b = (a + 1 + rng.index(n - 1)) % n;
          c.append(rng.bernoulli(0.8) ? Gate::cnot(a, b)
                                      : Gate::xxrot(a, b, rng.uniform(-2, 2)));
        }
      }
    }
    const QuantumCircuit once = circuit::peephole_optimize(c);
    const QuantumCircuit twice = circuit::peephole_optimize(once);
    EXPECT_EQ(once.size(), twice.size());
    EXPECT_TRUE(sim::circuits_equivalent(c, once));
  }
}

TEST(CircuitStress, InverseRoundTripAllGateKinds) {
  Rng rng(73);
  QuantumCircuit c(4);
  c.append(Gate::h(0));
  c.append(Gate::s(1));
  c.append(Gate::sdg(2));
  c.append(Gate::x(3));
  c.append(Gate::y(0));
  c.append(Gate::z(1));
  c.append(Gate::rz(2, 0.3));
  c.append(Gate::rx(3, -0.7));
  c.append(Gate::ry(0, 1.1));
  c.append(Gate::cnot(0, 1));
  c.append(Gate::cz(1, 2));
  c.append(Gate::swap(2, 3));
  c.append(Gate::xxrot(0, 3, 0.45));
  c.append(Gate::xyrot(1, 2, -0.6));
  QuantumCircuit round = c;
  round.append(c.inverse());
  EXPECT_TRUE(sim::circuits_equivalent(round, QuantumCircuit(4)));
}

TEST(SynthesisStress, LongMixedSequencesStayUnitary) {
  // 12 random blocks, random targets, merge policy on: the emitted circuit
  // must implement exactly the product of exponentials.
  Rng rng(79);
  const std::size_t n = 4;
  std::vector<synth::RotationBlock> seq;
  for (int k = 0; k < 12; ++k) {
    pauli::PauliString p(n);
    std::size_t weight = 0;
    while (weight == 0) {
      for (std::size_t q = 0; q < n; ++q)
        p.set_letter(q, static_cast<pauli::Letter>(rng.index(4)));
      weight = p.weight();
    }
    synth::RotationBlock b;
    b.string = p;
    std::vector<std::size_t> targets;
    for (std::size_t q = 0; q < n; ++q)
      if (p.letter(q) != pauli::Letter::I) targets.push_back(q);
    b.target = targets[rng.index(targets.size())];
    b.angle_coeff = rng.uniform(-1.5, 1.5);
    seq.push_back(b);
  }
  const auto circ = synth::synthesize_sequence(n, seq);
  for (std::size_t input = 0; input < (std::size_t{1} << n); ++input) {
    sim::StateVector expect = sim::StateVector::basis_state(n, input);
    for (const auto& b : seq) expect.apply_pauli_exp(b.string, b.angle_coeff);
    sim::StateVector actual = sim::StateVector::basis_state(n, input);
    actual.apply_circuit(circ);
    EXPECT_NEAR(std::abs(expect.inner(actual)), 1.0, 1e-9) << input;
  }
}

}  // namespace
}  // namespace femto
