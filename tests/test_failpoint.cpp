// Contract tests for the fault-injection framework (common/failpoint.hpp)
// and the resilience features built on it:
//  * Zero-cost disabled path: with nothing armed, FEMTO_FAILPOINT performs
//    ZERO heap allocations (pinned by overriding the global allocator in
//    this binary, exactly like the obs::Tracer disabled-path test).
//  * Determinism: an armed failpoint's fire sequence is a pure function of
//    (seed, evaluation index) -- re-arming replays it bit-for-bit.
//  * Spec grammar: FEMTO_FAILPOINTS parsing accepts the documented forms
//    and rejects everything else without partially applying.
//  * Retry schedule: CompileClient's exponential-backoff-with-jitter delays
//    are a pure function of (policy, attempt), bounded by max_delay_s.
//  * Degraded serving: a pipeline whose database fails to open under
//    degrade_on_db_error compiles BIT-IDENTICAL to a database-free
//    pipeline, and reports db_degraded().
//  * pipeline.restart: an injected restart-boundary fault recomputes the
//    job and the response stays byte-identical (purity).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.hpp"
#include "core/pipeline.hpp"
#include "service/client.hpp"
#include "service/protocol.hpp"

// ---- allocation-counting global allocator (whole test binary) -------------
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace femto {
namespace {

/// Every test leaves the process-global registry clean, armed or not.
class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { fail::registry().disarm_all(); }
};

// ---- disabled fast path ---------------------------------------------------

TEST_F(FailpointTest, DisabledPathPerformsZeroAllocations) {
  fail::registry().disarm_all();
  bool fired = false;
  const std::uint64_t before = g_allocations.load();
  for (int i = 0; i < 100000; ++i)
    if (FEMTO_FAILPOINT("test.disabled.probe")) fired = true;
  const std::uint64_t delta = g_allocations.load() - before;
  EXPECT_EQ(delta, 0u) << "disabled failpoint evaluation allocated";
  EXPECT_FALSE(fired);
}

TEST_F(FailpointTest, DisabledPointStaysSilentWhileAnotherIsArmed) {
  ASSERT_EQ(fail::registry().arm("test.other:1:1"), "");
  for (int i = 0; i < 1000; ++i)
    EXPECT_FALSE(FEMTO_FAILPOINT("test.never.armed"));
  EXPECT_TRUE(FEMTO_FAILPOINT("test.other"));
}

// ---- spec grammar ---------------------------------------------------------

TEST_F(FailpointTest, ParsesFullAndDefaultedSpecs) {
  std::string err;
  const auto specs =
      fail::parse_spec("db.write.short:0.5:42,service.recv,cache.insert:1",
                       &err);
  ASSERT_TRUE(specs.has_value()) << err;
  ASSERT_EQ(specs->size(), 3u);
  EXPECT_EQ((*specs)[0].name, "db.write.short");
  EXPECT_DOUBLE_EQ((*specs)[0].prob, 0.5);
  EXPECT_EQ((*specs)[0].seed, 42u);
  EXPECT_EQ((*specs)[1].name, "service.recv");
  EXPECT_DOUBLE_EQ((*specs)[1].prob, 1.0);  // default
  EXPECT_EQ((*specs)[1].seed, 0u);          // default
  EXPECT_EQ((*specs)[2].name, "cache.insert");
  EXPECT_DOUBLE_EQ((*specs)[2].prob, 1.0);
}

TEST_F(FailpointTest, EmptySpecParsesToNothing) {
  std::string err;
  const auto specs = fail::parse_spec("", &err);
  ASSERT_TRUE(specs.has_value()) << err;
  EXPECT_TRUE(specs->empty());
}

TEST_F(FailpointTest, RejectsMalformedSpecsLoudly) {
  for (const char* bad :
       {"name:1.5", "name:-0.1", "name:zero", "name:0.5:abc", ":0.5",
        "a,,b", "name:0.5:1:extra"}) {
    std::string err;
    EXPECT_FALSE(fail::parse_spec(bad, &err).has_value()) << bad;
    EXPECT_FALSE(err.empty()) << bad;
  }
  // "name:0.5:1:extra": the seed field "1:extra" fails integer parsing.
}

TEST_F(FailpointTest, MalformedArmSpecArmsNothing) {
  const std::string err = fail::registry().arm("test.good:1,test.bad:2.0");
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(FEMTO_FAILPOINT("test.good"));
}

// ---- deterministic firing -------------------------------------------------

std::vector<bool> fire_pattern(const std::string& spec, const char* name,
                               int n) {
  EXPECT_EQ(fail::registry().arm(spec), "");
  std::vector<bool> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(FEMTO_FAILPOINT(name));
  EXPECT_TRUE(fail::registry().disarm(name));
  return out;
}

TEST_F(FailpointTest, FireSequenceIsAPureFunctionOfSeed) {
  const auto a = fire_pattern("test.det:0.5:42", "test.det", 256);
  const auto b = fire_pattern("test.det:0.5:42", "test.det", 256);
  EXPECT_EQ(a, b) << "re-arming with the same seed must replay the sequence";
  const auto c = fire_pattern("test.det:0.5:43", "test.det", 256);
  EXPECT_NE(a, c) << "different seeds must decorrelate";
  // ~half fire at prob 0.5; loose bounds, the sequence is deterministic.
  const auto fires = static_cast<std::size_t>(
      std::count(a.begin(), a.end(), true));
  EXPECT_GT(fires, 64u);
  EXPECT_LT(fires, 192u);
}

TEST_F(FailpointTest, ProbabilityEndpointsAreExact) {
  ASSERT_EQ(fail::registry().arm("test.p0:0,test.p1:1"), "");
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(FEMTO_FAILPOINT("test.p0"));
    EXPECT_TRUE(FEMTO_FAILPOINT("test.p1"));
  }
  for (const fail::FailpointView& fp : fail::registry().snapshot()) {
    if (fp.name == "test.p0") {
      EXPECT_EQ(fp.evaluations, 1000u);
      EXPECT_EQ(fp.fires, 0u);
    }
    if (fp.name == "test.p1") {
      EXPECT_EQ(fp.evaluations, 1000u);
      EXPECT_EQ(fp.fires, 1000u);
    }
  }
}

TEST_F(FailpointTest, DisarmUnknownNameReportsFalse) {
  EXPECT_FALSE(fail::registry().disarm("test.no.such.point"));
}

TEST_F(FailpointTest, ConcurrentEvaluationIsSafeAndCounted) {
  ASSERT_EQ(fail::registry().arm("test.mt:0.5:7"), "");
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([] {
      for (int i = 0; i < 10000; ++i)
        static_cast<void>(FEMTO_FAILPOINT("test.mt"));
    });
  for (std::thread& t : threads) t.join();
  for (const fail::FailpointView& fp : fail::registry().snapshot()) {
    if (fp.name == "test.mt") {
      EXPECT_EQ(fp.evaluations, 40000u);
    }
  }
}

// ---- retry schedule -------------------------------------------------------

TEST_F(FailpointTest, RetryDelaysAreDeterministicAndBounded) {
  service::RetryPolicy policy;
  policy.base_delay_s = 0.01;
  policy.max_delay_s = 0.5;
  policy.jitter = 0.5;
  policy.seed = 1234;
  for (std::size_t retry = 1; retry <= 64; ++retry) {
    const double d = service::retry_delay_s(policy, retry);
    EXPECT_EQ(d, service::retry_delay_s(policy, retry)) << retry;
    EXPECT_GT(d, 0.0);
    EXPECT_LE(d, policy.max_delay_s);
  }
  // The jittered delay stays inside [exp/2, exp] of the exponential
  // envelope (jitter shrinks, never grows).
  EXPECT_GE(service::retry_delay_s(policy, 1), 0.005);
  EXPECT_LE(service::retry_delay_s(policy, 1), 0.01);
  EXPECT_GE(service::retry_delay_s(policy, 3), 0.02);
  EXPECT_LE(service::retry_delay_s(policy, 3), 0.04);
  // Distinct seeds decorrelate fleets.
  service::RetryPolicy other = policy;
  other.seed = 99;
  bool differs = false;
  for (std::size_t retry = 1; retry <= 8; ++retry)
    differs |= service::retry_delay_s(policy, retry) !=
               service::retry_delay_s(other, retry);
  EXPECT_TRUE(differs);
  // jitter 0 = fixed schedule at the envelope.
  service::RetryPolicy fixed = policy;
  fixed.jitter = 0.0;
  EXPECT_DOUBLE_EQ(service::retry_delay_s(fixed, 1), 0.01);
  EXPECT_DOUBLE_EQ(service::retry_delay_s(fixed, 2), 0.02);
  EXPECT_DOUBLE_EQ(service::retry_delay_s(fixed, 20), 0.5);
}

// ---- degradation + restart-boundary bit-identity --------------------------

core::CompileRequest tiny_request(const std::string& name) {
  core::CompileScenario s;
  s.name = name;
  s.num_qubits = 4;
  s.terms = {fermion::ExcitationTerm::make_double(2, 3, 0, 1),
             fermion::ExcitationTerm::single(2, 0),
             fermion::ExcitationTerm::single(3, 1)};
  s.options.transform = core::TransformKind::kAdvanced;
  s.options.sorting = core::SortingMode::kAdvanced;
  s.options.compression = core::CompressionMode::kHybrid;
  s.options.coloring_orders = 8;
  s.options.sa_options.steps = 150;
  s.options.pso_options.particles = 6;
  s.options.pso_options.iterations = 6;
  s.options.gtsp_options.population = 8;
  s.options.gtsp_options.generations = 15;
  s.options.emit_circuit = true;
  core::CompileRequest r;
  r.scenarios = {s};
  r.restarts = 2;
  r.seed = 20230306;
  return r;
}

std::string canonical(const core::CompileResponse& response) {
  return service::protocol::encode_response(
             service::protocol::summarize(response,
                                          /*include_circuits=*/true))
      .encode();
}

TEST_F(FailpointTest, DegradedPipelineServesBitIdenticalToNoDatabase) {
  const std::string bogus =
      ::testing::TempDir() + "failpoint_no_such_database.fdb";
  std::remove(bogus.c_str());
  core::CompilePipeline degraded({.workers = 2,
                                  .database_path = bogus,
                                  .degrade_on_db_error = true});
  EXPECT_TRUE(degraded.db_degraded());
  EXPECT_EQ(degraded.database(), nullptr);
  EXPECT_EQ(obs::registry().gauge("service.degraded").value(), 1);

  core::CompilePipeline plain({.workers = 2});
  EXPECT_FALSE(plain.db_degraded());
  const core::CompileRequest request = tiny_request("degraded");
  EXPECT_EQ(canonical(degraded.compile(request)),
            canonical(plain.compile(request)));
}

TEST_F(FailpointTest, RestartFaultRecomputesBitIdentically) {
  const core::CompileRequest request = tiny_request("restart-fault");
  core::CompilePipeline pipeline({.workers = 2});
  const std::string reference = canonical(pipeline.compile(request));

  const std::uint64_t retries_before =
      obs::registry().counter("pipeline.restart_retries").value();
  ASSERT_EQ(fail::registry().arm("pipeline.restart:1:5"), "");
  const std::string faulted = canonical(pipeline.compile(request));
  ASSERT_TRUE(fail::registry().disarm("pipeline.restart"));
  const std::uint64_t retries =
      obs::registry().counter("pipeline.restart_retries").value() -
      retries_before;

  EXPECT_EQ(faulted, reference)
      << "a recomputed restart job must be bit-identical (purity)";
  EXPECT_GE(retries, request.restarts)
      << "every restart job should have been recomputed at prob 1";
}

}  // namespace
}  // namespace femto
