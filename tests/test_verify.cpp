// Tests for the verification subsystem (verify/): symbolic Pauli
// propagation, the tiered EquivalenceChecker, compilation-spec certification
// and the cross-encoding frame identity C_adv * U_Gamma == U_Gamma * C_jw --
// including at qubit counts (30+) where dense comparison is impossible.
#include <gtest/gtest.h>

#include <vector>

#include "chem/integrals.hpp"
#include "chem/mo_integrals.hpp"
#include "chem/molecules.hpp"
#include "chem/scf.hpp"
#include "circuit/peephole.hpp"
#include "common/rng.hpp"
#include "core/compiler.hpp"
#include "gf2/linear_synthesis.hpp"
#include "synth/pauli_exponential.hpp"
#include "verify/equivalence.hpp"
#include "verify/test_support.hpp"
#include "vqe/uccsd.hpp"

namespace femto::verify {
namespace {

using circuit::Gate;
using circuit::GateKind;
using circuit::QuantumCircuit;

/// Trimmed solver knobs (same spirit as test_pipeline.cpp).
core::CompileOptions fast_options() {
  core::CompileOptions o;
  o.coloring_orders = 8;
  o.sa_options = {2.0, 0.05, 150, 0};
  o.pso_options.particles = 8;
  o.pso_options.iterations = 15;
  o.gtsp_options.population = 12;
  o.gtsp_options.generations = 30;
  o.gtsp_options.stagnation_limit = 15;
  return o;
}

struct Fixture {
  std::size_t n = 0;
  std::vector<fermion::ExcitationTerm> terms;
};

Fixture molecule_terms(const chem::Molecule& mol, std::size_t keep) {
  auto basis = chem::build_sto3g(mol);
  chem::normalize_basis(basis);
  const auto ints = chem::compute_integrals(mol, basis);
  const auto scf = chem::run_rhf(mol, ints);
  const auto mo = chem::transform_to_mo(mol, ints, scf);
  const auto so = chem::to_spin_orbitals(mo);
  Fixture f;
  f.n = so.n;
  f.terms = vqe::uccsd_hmp2_terms(so);
  if (f.terms.size() > keep) f.terms.resize(keep);
  return f;
}

const Fixture& lih() {
  static const Fixture f = molecule_terms(chem::make_lih(), 4);
  return f;
}

const Fixture& water() {
  static const Fixture f = molecule_terms(chem::make_h2o(), 4);
  return f;
}

TEST(PauliPropagation, SynthesisPoliciesAgreeSymbolicallyAt32Qubits) {
  // kMerge and kNone emit very different gate streams for the same block
  // sequence; symbolic propagation must certify them equal with NO dense
  // fallback, far beyond statevector reach.
  Rng rng(3);
  const std::size_t n = 32;
  EquivalenceOptions options;
  options.allow_dense_fallback = false;
  const EquivalenceChecker checker(options);
  for (int rep = 0; rep < 3; ++rep) {
    const auto blocks = testing::random_rotation_blocks(n, 25, rng);
    const QuantumCircuit merged =
        synth::synthesize_sequence(n, blocks, synth::MergePolicy::kMerge);
    const QuantumCircuit plain =
        synth::synthesize_sequence(n, blocks, synth::MergePolicy::kNone);
    const EquivalenceReport report = checker.check(merged, plain);
    EXPECT_TRUE(report.equivalent()) << report.to_string();
    EXPECT_EQ(report.method, EquivalenceMethod::kPauliPropagation);
    // Both also certify against the block spec itself.
    const EquivalenceReport vs_spec =
        checker.check_spec(merged, make_spec(blocks));
    EXPECT_TRUE(vs_spec.equivalent()) << vs_spec.to_string();
  }
}

TEST(PauliPropagation, CorruptedCircuitRejectedWithLocalizedReport) {
  Rng rng(5);
  const std::size_t n = 32;
  EquivalenceOptions options;
  options.allow_dense_fallback = false;
  const EquivalenceChecker checker(options);
  const auto blocks = testing::random_rotation_blocks(n, 20, rng);
  QuantumCircuit circuit = synth::synthesize_sequence(n, blocks);
  ASSERT_TRUE(checker.check_spec(circuit, make_spec(blocks)).equivalent());
  // Flip one CNOT's direction mid-circuit: a single-gate corruption.
  const std::size_t flipped =
      testing::flip_first_cnot(circuit, circuit.size() / 2);
  ASSERT_LT(flipped, circuit.size());
  const EquivalenceReport report = checker.check_spec(circuit, make_spec(blocks));
  EXPECT_FALSE(report.equivalent());
  EXPECT_EQ(report.status, EquivalenceStatus::kNotEquivalent);
  EXPECT_FALSE(report.detail.empty());
  // The report localizes the divergence: either a rotation index or a named
  // tableau generator.
  EXPECT_TRUE(report.mismatch_index != EquivalenceReport::kNoIndex ||
              report.detail.find("image of") != std::string::npos)
      << report.to_string();
}

TEST(PauliPropagation, CertifiesPeepholeOnRandomMixedCircuits) {
  Rng rng(7);
  const std::size_t n = 4;
  const EquivalenceChecker checker;
  for (int rep = 0; rep < 20; ++rep) {
    QuantumCircuit c(n);
    for (int g = 0; g < 40; ++g) {
      const std::size_t a = rng.index(n);
      std::size_t b = rng.index(n);
      if (a == b) b = (b + 1) % n;
      switch (rng.index(10)) {
        case 0: c.append(Gate::h(a)); break;
        case 1: c.append(Gate::s(a)); break;
        case 2: c.append(Gate::sdg(a)); break;
        case 3: c.append(Gate::x(a)); break;
        case 4: c.append(Gate::rz(a, rng.uniform(-2, 2),
                                  rng.bernoulli(0.5) ? 0 : -1));
                break;
        case 5: c.append(Gate::ry(a, rng.uniform(-2, 2))); break;
        case 6: c.append(Gate::cnot(a, b)); break;
        case 7: c.append(Gate::cz(a, b)); break;
        case 8: c.append(Gate::xxrot(a, b, rng.uniform(-2, 2))); break;
        default:
          c.append(Gate::xyrot(a, b, rng.uniform(-2, 2),
                               rng.bernoulli(0.5) ? 1 : -1));
      }
    }
    const QuantumCircuit opt = circuit::peephole_optimize(c);
    const EquivalenceReport report = checker.check(c, opt);
    EXPECT_TRUE(report.equivalent())
        << report.to_string() << "\noriginal:\n" << c.to_string()
        << "optimized:\n" << opt.to_string();
  }
}

TEST(EquivalenceChecker, CliffordTierIsExactAndLocalizes) {
  Rng rng(13);
  const std::size_t n = 24;  // beyond dense reach, trivial for the tableau
  QuantumCircuit c(n);
  for (int g = 0; g < 300; ++g) {
    const std::size_t a = rng.index(n);
    std::size_t b = rng.index(n);
    if (a == b) b = (b + 1) % n;
    switch (rng.index(4)) {
      case 0: c.append(Gate::h(a)); break;
      case 1: c.append(Gate::s(a)); break;
      case 2: c.append(Gate::cz(a, b)); break;
      default: c.append(Gate::cnot(a, b));
    }
  }
  const EquivalenceChecker checker;
  // A circuit and its peephole-optimized form: tier-1 certificate.
  const EquivalenceReport ok = checker.check(c, circuit::peephole_optimize(c));
  EXPECT_TRUE(ok.equivalent()) << ok.to_string();
  EXPECT_EQ(ok.method, EquivalenceMethod::kCliffordTableau);
  // One extra S gate: rejected by the same tier with a named generator.
  QuantumCircuit corrupted = c;
  corrupted.append(Gate::s(n / 2));
  const EquivalenceReport bad = checker.check(c, corrupted);
  EXPECT_EQ(bad.status, EquivalenceStatus::kNotEquivalent);
  EXPECT_EQ(bad.method, EquivalenceMethod::kCliffordTableau);
  EXPECT_NE(bad.detail.find("image of"), std::string::npos) << bad.to_string();
}

TEST(EquivalenceChecker, DenseTierArbitratesLiteralAngles) {
  QuantumCircuit a(1);
  a.append(Gate::rz(0, 0.3));
  QuantumCircuit b(1);
  b.append(Gate::rz(0, 0.4));
  const EquivalenceChecker checker;
  const EquivalenceReport report = checker.check(a, b);
  EXPECT_EQ(report.status, EquivalenceStatus::kNotEquivalent);
  EXPECT_EQ(report.method, EquivalenceMethod::kDenseSpotCheck);
  // Same check, symbolic only: still rejected, by propagation.
  EquivalenceOptions options;
  options.allow_dense_fallback = false;
  const EquivalenceReport symbolic = EquivalenceChecker(options).check(a, b);
  EXPECT_EQ(symbolic.status, EquivalenceStatus::kNotEquivalent);
  EXPECT_EQ(symbolic.method, EquivalenceMethod::kPauliPropagation);
  EXPECT_EQ(symbolic.mismatch_index, 0u);
}

TEST(EquivalenceChecker, CompiledResultsCertifyAgainstTheirSpecs) {
  const Fixture& f = lih();
  const EquivalenceChecker checker;
  // The advanced pipeline (hybrid compression + SA Gamma + GTSP sorting)
  // and the baseline of [9] both emit circuits that must implement their
  // recorded specs exactly.
  core::CompileOptions adv = fast_options();
  core::CompileOptions base = fast_options();
  base.transform = core::TransformKind::kJordanWigner;
  base.sorting = core::SortingMode::kBaseline;
  base.compression = core::CompressionMode::kBosonicOnly;
  for (const core::CompileOptions& options : {adv, base}) {
    const core::CompileResult result =
        core::compile_vqe(f.n, f.terms, options);
    ASSERT_FALSE(result.spec.empty());
    const EquivalenceReport report =
        checker.check_spec(result.circuit, result.spec);
    EXPECT_TRUE(report.equivalent()) << report.to_string();
    // A corrupted emission is caught.
    core::CompileResult corrupted = result;
    for (Gate& g : corrupted.circuit.mutable_gates()) {
      if (g.kind == GateKind::kCnot) {
        std::swap(g.q0, g.q1);
        break;
      }
    }
    EXPECT_FALSE(
        checker.check_spec(corrupted.circuit, corrupted.spec).equivalent());
  }
}

TEST(EquivalenceChecker, CrossEncodingWaterCompilationsEquivalent) {
  // Two independent compilations of the same water plan -- Jordan-Wigner vs
  // the annealed Gamma encoding -- are different circuits implementing
  // U_Gamma C_jw U_Gamma^dag. The checker certifies the frame identity
  // C_adv . U_Gamma == U_Gamma . C_jw symbolically at n = 14, where dense
  // unitary comparison is already infeasible.
  const Fixture& f = water();
  core::CompileOptions options = fast_options();
  options.compression = core::CompressionMode::kNone;
  options.sorting = core::SortingMode::kNone;
  options.transform = core::TransformKind::kJordanWigner;
  const core::CompileResult jw = core::compile_vqe(f.n, f.terms, options);

  EquivalenceOptions eq_options;
  eq_options.allow_dense_fallback = false;  // must succeed symbolically
  const EquivalenceChecker checker(eq_options);
  const auto check_frame = [&](const core::CompileResult& other) {
    ASSERT_EQ(jw.term_order, other.term_order);  // same plan, same seed
    const QuantumCircuit gamma_network =
        testing::cnot_network_circuit(f.n, other.gamma);
    QuantumCircuit lhs(f.n);  // C_other * U_Gamma: network first, then circuit
    lhs.append(gamma_network);
    lhs.append(other.circuit);
    QuantumCircuit rhs(f.n);  // U_Gamma * C_jw
    rhs.append(jw.circuit);
    rhs.append(gamma_network);
    const EquivalenceReport report = checker.check(lhs, rhs);
    EXPECT_TRUE(report.equivalent()) << report.to_string();
    EXPECT_EQ(report.method, EquivalenceMethod::kPauliPropagation);
  };

  // Bravyi-Kitaev: the Fenwick Gamma is never identity, so the two circuits
  // are guaranteed-different gate streams and the certificate does real
  // work.
  options.transform = core::TransformKind::kBravyiKitaev;
  const core::CompileResult bk = core::compile_vqe(f.n, f.terms, options);
  ASSERT_FALSE(bk.gamma == gf2::Matrix::identity(f.n));
  EXPECT_NE(jw.circuit.to_string(), bk.circuit.to_string());
  check_frame(bk);

  // The annealed Gamma of the advanced transform (may legitimately fall
  // back to identity on small instances; the frame identity holds either
  // way).
  options.transform = core::TransformKind::kAdvanced;
  check_frame(core::compile_vqe(f.n, f.terms, options));
}

TEST(EquivalenceChecker, InverseCircuitCancelsSymbolically) {
  Rng rng(17);
  const std::size_t n = 30;
  EquivalenceOptions options;
  options.allow_dense_fallback = false;
  const EquivalenceChecker checker(options);
  const auto blocks = testing::random_rotation_blocks(n, 15, rng);
  const QuantumCircuit c = synth::synthesize_sequence(n, blocks);
  QuantumCircuit both = c;
  both.append(c.inverse());
  const EquivalenceReport report = checker.check(both, QuantumCircuit(n));
  EXPECT_TRUE(report.equivalent()) << report.to_string();
}

}  // namespace
}  // namespace femto::verify
