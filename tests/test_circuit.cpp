// Tests for the gate IR and the peephole optimizer.
#include <gtest/gtest.h>

#include "circuit/peephole.hpp"
#include "circuit/quantum_circuit.hpp"
#include "common/rng.hpp"
#include "sim/unitary.hpp"
#include "verify/equivalence.hpp"

namespace femto::circuit {
namespace {

TEST(Gate, CnotCosts) {
  EXPECT_EQ(Gate::cnot(0, 1).cnot_cost(), 1);
  EXPECT_EQ(Gate::cz(0, 1).cnot_cost(), 1);
  EXPECT_EQ(Gate::swap(0, 1).cnot_cost(), 3);
  EXPECT_EQ(Gate::h(0).cnot_cost(), 0);
  EXPECT_EQ(Gate::xxrot(0, 1, M_PI / 2).cnot_cost(), 1);
  EXPECT_EQ(Gate::xxrot(0, 1, -M_PI / 2).cnot_cost(), 1);
  EXPECT_EQ(Gate::xxrot(0, 1, 0.3).cnot_cost(), 2);
  EXPECT_EQ(Gate::xxrot(0, 1, 0.0).cnot_cost(), 0);
  EXPECT_EQ(Gate::xyrot(0, 1, 0.7).cnot_cost(), 2);
  EXPECT_EQ(Gate::xyrot(0, 1, 0.0).cnot_cost(), 0);
}

TEST(QuantumCircuit, StatsAndDepth) {
  QuantumCircuit c(3);
  c.append(Gate::h(0));
  c.append(Gate::cnot(0, 1));
  c.append(Gate::cnot(1, 2));
  c.append(Gate::rz(2, 0.5));
  EXPECT_EQ(c.cnot_count(), 2);
  EXPECT_EQ(c.single_qubit_count(), 2u);
  EXPECT_EQ(c.depth(), 4u);
}

TEST(QuantumCircuit, InverseIsInverse) {
  Rng rng(5);
  QuantumCircuit c(3);
  c.append(Gate::h(0));
  c.append(Gate::s(1));
  c.append(Gate::cnot(0, 2));
  c.append(Gate::rz(2, 0.37));
  c.append(Gate::rx(1, -0.8));
  c.append(Gate::xxrot(0, 1, 0.22));
  QuantumCircuit id(3);
  QuantumCircuit both = c;
  both.append(c.inverse());
  EXPECT_TRUE(sim::circuits_equivalent(both, id));
}

TEST(Peephole, CancelsInversePairs) {
  QuantumCircuit c(2);
  c.append(Gate::h(0));
  c.append(Gate::h(0));
  c.append(Gate::cnot(0, 1));
  c.append(Gate::cnot(0, 1));
  c.append(Gate::s(1));
  c.append(Gate::sdg(1));
  const QuantumCircuit opt = peephole_optimize(c);
  EXPECT_TRUE(opt.empty());
}

TEST(Peephole, MergesRotations) {
  QuantumCircuit c(1);
  c.append(Gate::rz(0, 0.25));
  c.append(Gate::rz(0, 0.5));
  const QuantumCircuit opt = peephole_optimize(c);
  ASSERT_EQ(opt.size(), 1u);
  EXPECT_NEAR(opt.gates()[0].angle, 0.75, 1e-12);
  // Opposite angles vanish entirely.
  QuantumCircuit z(1);
  z.append(Gate::rz(0, 0.25));
  z.append(Gate::rz(0, -0.25));
  EXPECT_TRUE(peephole_optimize(z).empty());
}

TEST(Peephole, CancelsThroughCommutingGates) {
  // CNOT(0,1) Rz(0) CNOT(0,1): Rz on the control commutes, CNOTs cancel.
  QuantumCircuit c(2);
  c.append(Gate::cnot(0, 1));
  c.append(Gate::rz(0, 0.7));
  c.append(Gate::cnot(0, 1));
  const QuantumCircuit opt = peephole_optimize(c);
  EXPECT_EQ(opt.cnot_count(), 0);
  ASSERT_EQ(opt.size(), 1u);
  EXPECT_EQ(opt.gates()[0].kind, GateKind::kRz);
}

TEST(Peephole, CancelsThroughSharedTargetCnots) {
  // CNOT(0,2) CNOT(1,2) CNOT(0,2): outer pair shares target 2 with the
  // middle gate and must cancel.
  QuantumCircuit c(3);
  c.append(Gate::cnot(0, 2));
  c.append(Gate::cnot(1, 2));
  c.append(Gate::cnot(0, 2));
  const QuantumCircuit opt = peephole_optimize(c);
  EXPECT_EQ(opt.cnot_count(), 1);
}

TEST(Peephole, DoesNotCancelThroughBlockingGates) {
  // CNOT(0,1) H(0) CNOT(0,1): H blocks, nothing cancels.
  QuantumCircuit c(2);
  c.append(Gate::cnot(0, 1));
  c.append(Gate::h(0));
  c.append(Gate::cnot(0, 1));
  const QuantumCircuit opt = peephole_optimize(c);
  EXPECT_EQ(opt.cnot_count(), 2);
}

TEST(Peephole, PreservesUnitaryOnRandomCircuits) {
  Rng rng(29);
  for (int rep = 0; rep < 25; ++rep) {
    const std::size_t n = 3;
    QuantumCircuit c(n);
    for (int g = 0; g < 30; ++g) {
      switch (rng.index(7)) {
        case 0: c.append(Gate::h(rng.index(n))); break;
        case 1: c.append(Gate::s(rng.index(n))); break;
        case 2: c.append(Gate::sdg(rng.index(n))); break;
        case 3: c.append(Gate::rz(rng.index(n), rng.uniform(-1, 1))); break;
        case 4: c.append(Gate::x(rng.index(n))); break;
        default: {
          const std::size_t a = rng.index(n);
          std::size_t b = rng.index(n);
          if (a == b) b = (b + 1) % n;
          c.append(Gate::cnot(a, b));
        }
      }
    }
    const QuantumCircuit opt = peephole_optimize(c);
    EXPECT_LE(opt.size(), c.size());
    EXPECT_TRUE(sim::circuits_equivalent(c, opt))
        << "rep " << rep << "\noriginal:\n" << c.to_string()
        << "optimized:\n" << opt.to_string();
  }
}

TEST(QuantumCircuit, InverseIsExactForEveryGateKind) {
  // Audit of the inverse() switch: every GateKind -- including the
  // parameterized / diagonal ones, where a silently-wrong self-inverse
  // default would hide -- must satisfy C . C^-1 == identity, certified by
  // the equivalence checker (symbolic in the variational parameters).
  const std::size_t n = 3;
  const verify::EquivalenceChecker checker;
  const std::vector<Gate> instances = {
      Gate::x(0),
      Gate::y(1),
      Gate::z(2),
      Gate::h(0),
      Gate::s(1),
      Gate::sdg(2),
      Gate::rz(0, 0.37),
      Gate::rz(1, -1.2, /*param=*/0),
      Gate::rx(1, 0.61),
      Gate::rx(2, 0.8, /*param=*/1),
      Gate::ry(2, -0.83),
      Gate::ry(0, 1.7, /*param=*/0),
      Gate::cnot(0, 2),
      Gate::cz(1, 2),
      Gate::swap(0, 1),
      Gate::xxrot(0, 1, 0.29),
      Gate::xxrot(1, 2, -0.4, /*param... literal*/ -1),
      Gate::xyrot(0, 2, 0.55),
      Gate::xyrot(1, 0, 0.9, /*param=*/1),
  };
  // Every GateKind is represented above.
  for (int k = 0; k <= static_cast<int>(GateKind::kXYrot); ++k) {
    bool covered = false;
    for (const Gate& g : instances)
      covered = covered || g.kind == static_cast<GateKind>(k);
    EXPECT_TRUE(covered) << "GateKind " << k << " missing from the audit";
  }
  for (const Gate& g : instances) {
    QuantumCircuit c(n);
    c.append(g);
    QuantumCircuit both = c;
    both.append(c.inverse());
    const auto report = checker.check(both, QuantumCircuit(n));
    EXPECT_TRUE(report.equivalent())
        << g.to_string() << ": " << report.to_string();
  }
  // And a mixed circuit over all of them at once.
  QuantumCircuit mixed(n);
  for (const Gate& g : instances) mixed.append(g);
  QuantumCircuit both = mixed;
  both.append(mixed.inverse());
  const auto report = checker.check(both, QuantumCircuit(n));
  EXPECT_TRUE(report.equivalent()) << report.to_string();
}

TEST(Peephole, DoesNotMergeTwoQubitRotationsAcrossDifferentPairs) {
  // Regression: XY(0,1) and XY(0,2) share q0 and the same parameter but act
  // on different pairs; merging them was a silent unitary change.
  QuantumCircuit c(3);
  c.append(Gate::xyrot(0, 1, 0.3, /*param=*/0));
  c.append(Gate::xyrot(0, 2, 0.3, /*param=*/0));
  const QuantumCircuit opt = peephole_optimize(c);
  EXPECT_EQ(opt.size(), 2u);
  // Swapped wire order on the same pair IS the same rotation and merges.
  QuantumCircuit same_pair(3);
  same_pair.append(Gate::xyrot(0, 1, 0.3, /*param=*/0));
  same_pair.append(Gate::xyrot(1, 0, 0.4, /*param=*/0));
  const QuantumCircuit merged = peephole_optimize(same_pair);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_NEAR(merged.gates()[0].angle, 0.7, 1e-12);
  const verify::EquivalenceChecker checker;
  EXPECT_TRUE(checker.check(same_pair, merged).equivalent());
}

TEST(Peephole, RulesCertifiedByEquivalenceCheckerOnRandomCircuits) {
  // Property test over the full gate surface (rotations, variational
  // parameters, structured two-qubit gates): every peephole rewrite must be
  // certified by the equivalence checker.
  Rng rng(31);
  const verify::EquivalenceChecker checker;
  for (int rep = 0; rep < 20; ++rep) {
    const std::size_t n = 4;
    QuantumCircuit c(n);
    for (int g = 0; g < 35; ++g) {
      const std::size_t a = rng.index(n);
      std::size_t b = rng.index(n);
      if (a == b) b = (b + 1) % n;
      switch (rng.index(12)) {
        case 0: c.append(Gate::h(a)); break;
        case 1: c.append(Gate::s(a)); break;
        case 2: c.append(Gate::sdg(a)); break;
        case 3: c.append(Gate::x(a)); break;
        case 4: c.append(Gate::y(a)); break;
        case 5:
          c.append(Gate::rz(a, rng.uniform(-2, 2),
                            rng.bernoulli(0.5) ? rng.range(0, 2) : -1));
          break;
        case 6: c.append(Gate::rx(a, rng.uniform(-2, 2))); break;
        case 7: c.append(Gate::ry(a, rng.uniform(-2, 2))); break;
        case 8: c.append(Gate::cnot(a, b)); break;
        case 9: c.append(Gate::cz(a, b)); break;
        case 10:
          c.append(Gate::xxrot(a, b, rng.uniform(-2, 2),
                               rng.bernoulli(0.5) ? rng.range(0, 2) : -1));
          break;
        default:
          c.append(Gate::xyrot(a, b, rng.uniform(-2, 2),
                               rng.bernoulli(0.5) ? rng.range(0, 2) : -1));
      }
    }
    const QuantumCircuit opt = peephole_optimize(c);
    EXPECT_LE(opt.size(), c.size());
    const auto report = checker.check(c, opt);
    EXPECT_TRUE(report.equivalent())
        << "rep " << rep << ": " << report.to_string() << "\noriginal:\n"
        << c.to_string() << "optimized:\n" << opt.to_string();
  }
}

TEST(Peephole, VariationalParamsMergeOnlySameParam) {
  QuantumCircuit c(1);
  c.append(Gate::rz(0, 1.0, 0));
  c.append(Gate::rz(0, 0.5, 0));
  c.append(Gate::rz(0, 1.0, 1));
  const QuantumCircuit opt = peephole_optimize(c);
  ASSERT_EQ(opt.size(), 2u);
  EXPECT_NEAR(opt.gates()[0].angle, 1.5, 1e-12);
  EXPECT_EQ(opt.gates()[0].param, 0);
  EXPECT_EQ(opt.gates()[1].param, 1);
}

}  // namespace
}  // namespace femto::circuit
