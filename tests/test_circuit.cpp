// Tests for the gate IR and the peephole optimizer.
#include <gtest/gtest.h>

#include "circuit/peephole.hpp"
#include "circuit/quantum_circuit.hpp"
#include "common/rng.hpp"
#include "sim/unitary.hpp"

namespace femto::circuit {
namespace {

TEST(Gate, CnotCosts) {
  EXPECT_EQ(Gate::cnot(0, 1).cnot_cost(), 1);
  EXPECT_EQ(Gate::cz(0, 1).cnot_cost(), 1);
  EXPECT_EQ(Gate::swap(0, 1).cnot_cost(), 3);
  EXPECT_EQ(Gate::h(0).cnot_cost(), 0);
  EXPECT_EQ(Gate::xxrot(0, 1, M_PI / 2).cnot_cost(), 1);
  EXPECT_EQ(Gate::xxrot(0, 1, -M_PI / 2).cnot_cost(), 1);
  EXPECT_EQ(Gate::xxrot(0, 1, 0.3).cnot_cost(), 2);
  EXPECT_EQ(Gate::xxrot(0, 1, 0.0).cnot_cost(), 0);
  EXPECT_EQ(Gate::xyrot(0, 1, 0.7).cnot_cost(), 2);
  EXPECT_EQ(Gate::xyrot(0, 1, 0.0).cnot_cost(), 0);
}

TEST(QuantumCircuit, StatsAndDepth) {
  QuantumCircuit c(3);
  c.append(Gate::h(0));
  c.append(Gate::cnot(0, 1));
  c.append(Gate::cnot(1, 2));
  c.append(Gate::rz(2, 0.5));
  EXPECT_EQ(c.cnot_count(), 2);
  EXPECT_EQ(c.single_qubit_count(), 2u);
  EXPECT_EQ(c.depth(), 4u);
}

TEST(QuantumCircuit, InverseIsInverse) {
  Rng rng(5);
  QuantumCircuit c(3);
  c.append(Gate::h(0));
  c.append(Gate::s(1));
  c.append(Gate::cnot(0, 2));
  c.append(Gate::rz(2, 0.37));
  c.append(Gate::rx(1, -0.8));
  c.append(Gate::xxrot(0, 1, 0.22));
  QuantumCircuit id(3);
  QuantumCircuit both = c;
  both.append(c.inverse());
  EXPECT_TRUE(sim::circuits_equivalent(both, id));
}

TEST(Peephole, CancelsInversePairs) {
  QuantumCircuit c(2);
  c.append(Gate::h(0));
  c.append(Gate::h(0));
  c.append(Gate::cnot(0, 1));
  c.append(Gate::cnot(0, 1));
  c.append(Gate::s(1));
  c.append(Gate::sdg(1));
  const QuantumCircuit opt = peephole_optimize(c);
  EXPECT_TRUE(opt.empty());
}

TEST(Peephole, MergesRotations) {
  QuantumCircuit c(1);
  c.append(Gate::rz(0, 0.25));
  c.append(Gate::rz(0, 0.5));
  const QuantumCircuit opt = peephole_optimize(c);
  ASSERT_EQ(opt.size(), 1u);
  EXPECT_NEAR(opt.gates()[0].angle, 0.75, 1e-12);
  // Opposite angles vanish entirely.
  QuantumCircuit z(1);
  z.append(Gate::rz(0, 0.25));
  z.append(Gate::rz(0, -0.25));
  EXPECT_TRUE(peephole_optimize(z).empty());
}

TEST(Peephole, CancelsThroughCommutingGates) {
  // CNOT(0,1) Rz(0) CNOT(0,1): Rz on the control commutes, CNOTs cancel.
  QuantumCircuit c(2);
  c.append(Gate::cnot(0, 1));
  c.append(Gate::rz(0, 0.7));
  c.append(Gate::cnot(0, 1));
  const QuantumCircuit opt = peephole_optimize(c);
  EXPECT_EQ(opt.cnot_count(), 0);
  ASSERT_EQ(opt.size(), 1u);
  EXPECT_EQ(opt.gates()[0].kind, GateKind::kRz);
}

TEST(Peephole, CancelsThroughSharedTargetCnots) {
  // CNOT(0,2) CNOT(1,2) CNOT(0,2): outer pair shares target 2 with the
  // middle gate and must cancel.
  QuantumCircuit c(3);
  c.append(Gate::cnot(0, 2));
  c.append(Gate::cnot(1, 2));
  c.append(Gate::cnot(0, 2));
  const QuantumCircuit opt = peephole_optimize(c);
  EXPECT_EQ(opt.cnot_count(), 1);
}

TEST(Peephole, DoesNotCancelThroughBlockingGates) {
  // CNOT(0,1) H(0) CNOT(0,1): H blocks, nothing cancels.
  QuantumCircuit c(2);
  c.append(Gate::cnot(0, 1));
  c.append(Gate::h(0));
  c.append(Gate::cnot(0, 1));
  const QuantumCircuit opt = peephole_optimize(c);
  EXPECT_EQ(opt.cnot_count(), 2);
}

TEST(Peephole, PreservesUnitaryOnRandomCircuits) {
  Rng rng(29);
  for (int rep = 0; rep < 25; ++rep) {
    const std::size_t n = 3;
    QuantumCircuit c(n);
    for (int g = 0; g < 30; ++g) {
      switch (rng.index(7)) {
        case 0: c.append(Gate::h(rng.index(n))); break;
        case 1: c.append(Gate::s(rng.index(n))); break;
        case 2: c.append(Gate::sdg(rng.index(n))); break;
        case 3: c.append(Gate::rz(rng.index(n), rng.uniform(-1, 1))); break;
        case 4: c.append(Gate::x(rng.index(n))); break;
        default: {
          const std::size_t a = rng.index(n);
          std::size_t b = rng.index(n);
          if (a == b) b = (b + 1) % n;
          c.append(Gate::cnot(a, b));
        }
      }
    }
    const QuantumCircuit opt = peephole_optimize(c);
    EXPECT_LE(opt.size(), c.size());
    EXPECT_TRUE(sim::circuits_equivalent(c, opt))
        << "rep " << rep << "\noriginal:\n" << c.to_string()
        << "optimized:\n" << opt.to_string();
  }
}

TEST(Peephole, VariationalParamsMergeOnlySameParam) {
  QuantumCircuit c(1);
  c.append(Gate::rz(0, 1.0, 0));
  c.append(Gate::rz(0, 0.5, 0));
  c.append(Gate::rz(0, 1.0, 1));
  const QuantumCircuit opt = peephole_optimize(c);
  ASSERT_EQ(opt.size(), 2u);
  EXPECT_NEAR(opt.gates()[0].angle, 1.5, 1e-12);
  EXPECT_EQ(opt.gates()[0].param, 0);
  EXPECT_EQ(opt.gates()[1].param, 1);
}

}  // namespace
}  // namespace femto::circuit
