// Tests for the statevector simulator and Lanczos solver.
#include <gtest/gtest.h>

#include "circuit/quantum_circuit.hpp"
#include "common/rng.hpp"
#include "pauli/pauli_sum.hpp"
#include "sim/lanczos.hpp"
#include "sim/statevector.hpp"
#include "sim/unitary.hpp"

namespace femto::sim {
namespace {

using circuit::Gate;
using circuit::QuantumCircuit;
using pauli::PauliString;
using pauli::PauliSum;

TEST(StateVector, BasisStatePreparation) {
  const StateVector sv = StateVector::basis_state(3, 5);
  EXPECT_NEAR(std::abs(sv.amplitude(5) - Complex(1, 0)), 0, 1e-15);
  EXPECT_NEAR(sv.norm(), 1.0, 1e-15);
}

TEST(StateVector, BellState) {
  StateVector sv(2);
  sv.apply_gate(Gate::h(0));
  sv.apply_gate(Gate::cnot(0, 1));
  EXPECT_NEAR(std::abs(sv.amplitude(0)), 1 / std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(std::abs(sv.amplitude(3)), 1 / std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(std::abs(sv.amplitude(1)), 0, 1e-12);
  // <ZZ> = 1, <XX> = 1, <ZI> = 0
  PauliSum zz(2);
  zz.add({1, 0}, PauliString::from_string("ZZ"));
  PauliSum xx(2);
  xx.add({1, 0}, PauliString::from_string("XX"));
  PauliSum zi(2);
  zi.add({1, 0}, PauliString::from_string("ZI"));
  EXPECT_NEAR(sv.expectation(zz).real(), 1.0, 1e-12);
  EXPECT_NEAR(sv.expectation(xx).real(), 1.0, 1e-12);
  EXPECT_NEAR(sv.expectation(zi).real(), 0.0, 1e-12);
}

TEST(StateVector, SwapGate) {
  StateVector sv = StateVector::basis_state(2, 1);  // |q0=1, q1=0>
  sv.apply_gate(Gate::swap(0, 1));
  EXPECT_NEAR(std::abs(sv.amplitude(2)), 1.0, 1e-12);
}

TEST(StateVector, PauliExpMatchesGateDecomposition) {
  // exp(-i t/2 Z) == Rz(t); exp(-i t/2 X) == Rx(t).
  Rng rng(3);
  for (int rep = 0; rep < 10; ++rep) {
    const double theta = rng.uniform(-3, 3);
    StateVector a(1), b(1);
    a.apply_gate(Gate::h(0));
    b.apply_gate(Gate::h(0));
    a.apply_pauli_exp(PauliString::from_string("Z"), theta);
    b.apply_gate(Gate::rz(0, theta));
    for (std::size_t i = 0; i < 2; ++i)
      EXPECT_NEAR(std::abs(a.amplitude(i) - b.amplitude(i)), 0, 1e-12);
  }
}

TEST(StateVector, XxRotMatchesPauliExp) {
  Rng rng(5);
  for (int rep = 0; rep < 10; ++rep) {
    const double theta = rng.uniform(-3, 3);
    StateVector a(3), b(3);
    // random-ish product start
    for (std::size_t q = 0; q < 3; ++q) {
      a.apply_gate(Gate::ry(q, 0.3 + 0.4 * static_cast<double>(q)));
      b.apply_gate(Gate::ry(q, 0.3 + 0.4 * static_cast<double>(q)));
    }
    a.apply_gate(Gate::xxrot(0, 2, theta));
    b.apply_pauli_exp(PauliString::from_string("XIX"), theta);
    for (std::size_t i = 0; i < 8; ++i)
      EXPECT_NEAR(std::abs(a.amplitude(i) - b.amplitude(i)), 0, 1e-12);
  }
}

TEST(StateVector, XyRotMatchesTwoPauliExps) {
  Rng rng(7);
  for (int rep = 0; rep < 10; ++rep) {
    const double theta = rng.uniform(-3, 3);
    StateVector a(2), b(2);
    a.apply_gate(Gate::ry(0, 0.9));
    b.apply_gate(Gate::ry(0, 0.9));
    a.apply_gate(Gate::xyrot(0, 1, theta));
    b.apply_pauli_exp(PauliString::from_string("XX"), theta);
    b.apply_pauli_exp(PauliString::from_string("YY"), theta);
    for (std::size_t i = 0; i < 4; ++i)
      EXPECT_NEAR(std::abs(a.amplitude(i) - b.amplitude(i)), 0, 1e-12);
  }
}

TEST(StateVector, NegativeSignStringExp) {
  // exp(-i t/2 (-Z)) == Rz(-t).
  const double theta = 0.83;
  StateVector a(1), b(1);
  a.apply_gate(Gate::h(0));
  b.apply_gate(Gate::h(0));
  a.apply_pauli_exp(PauliString::from_string("-Z"), theta);
  b.apply_gate(Gate::rz(0, -theta));
  for (std::size_t i = 0; i < 2; ++i)
    EXPECT_NEAR(std::abs(a.amplitude(i) - b.amplitude(i)), 0, 1e-12);
}

TEST(StateVector, ApplySumLinearity) {
  Rng rng(11);
  const std::size_t n = 4;
  PauliSum h(n);
  h.add({0.5, 0}, PauliString::from_string("XIZY"));
  h.add({-1.25, 0}, PauliString::from_string("ZZII"));
  h.add({0.75, 0}, PauliString::from_string("IYXI"));
  StateVector sv(n);
  for (std::size_t q = 0; q < n; ++q)
    sv.apply_gate(Gate::ry(q, rng.uniform(-2, 2)));
  // <psi|H|psi> real for Hermitian H with real coefficients.
  EXPECT_NEAR(sv.expectation(h).imag(), 0.0, 1e-12);
  // apply_sum matches per-term accumulation.
  const auto hpsi = sv.apply_sum(h);
  std::vector<Complex> manual(sv.dim(), Complex{0, 0});
  for (const auto& t : h.terms())
    sv.accumulate_pauli(t.string, t.coefficient, manual);
  for (std::size_t i = 0; i < sv.dim(); ++i)
    EXPECT_NEAR(std::abs(hpsi[i] - manual[i]), 0, 1e-12);
}

TEST(Lanczos, TransverseFieldIsingKnownEnergy) {
  // H = -sum Z_i Z_{i+1} - g sum X_i on 4 sites, open chain, g = 1.
  // Exact diagonalization value computed independently: compare against
  // dense spectrum via power iteration sanity (use small g=0 limit too).
  const std::size_t n = 4;
  PauliSum h(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    PauliString zz(n);
    zz.set_letter(i, pauli::Letter::Z);
    zz.set_letter(i + 1, pauli::Letter::Z);
    h.add({-1.0, 0.0}, zz);
  }
  // g = 0: ground energy = -(n-1) = -3.
  const auto res0 = lanczos_ground_energy(h, n);
  EXPECT_TRUE(res0.converged);
  EXPECT_NEAR(res0.ground_energy, -3.0, 1e-8);
  for (std::size_t i = 0; i < n; ++i) {
    PauliString x(n);
    x.set_letter(i, pauli::Letter::X);
    h.add({-1.0, 0.0}, x);
  }
  const auto res1 = lanczos_ground_energy(h, n);
  EXPECT_TRUE(res1.converged);
  // Cross-check with an independent method: shifted power iteration on
  // B = cI - H whose dominant eigenvalue is c - E0.
  const double shift = 10.0;
  StateVector v(n);
  Rng rng(42);
  for (auto& amp : v.amplitudes()) amp = Complex(rng.normal(), rng.normal());
  v.normalize();
  double lambda = 0.0;
  for (int it = 0; it < 3000; ++it) {
    const auto hv = v.apply_sum(h);
    for (std::size_t i = 0; i < v.dim(); ++i)
      v.amplitudes()[i] = shift * v.amplitudes()[i] - hv[i];
    lambda = v.norm();
    v.normalize();
  }
  EXPECT_NEAR(res1.ground_energy, shift - lambda, 1e-6);
}

TEST(Unitary, EquivalenceDetectsGlobalPhaseOnly) {
  QuantumCircuit a(1), b(1);
  a.append(Gate::rz(0, 0.5));
  // Rz(0.5) and e^{i phi} Rz(0.5): emulate phase via Rz + Z ... instead just
  // check a circuit equals itself and differs from a different rotation.
  b.append(Gate::rz(0, 0.5));
  EXPECT_TRUE(circuits_equivalent(a, b));
  QuantumCircuit c(1);
  c.append(Gate::rz(0, 0.6));
  EXPECT_FALSE(circuits_equivalent(a, c));
}

}  // namespace
}  // namespace femto::sim
