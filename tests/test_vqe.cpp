// Tests for UCCSD term generation, HMP2 ordering, and the VQE driver.
#include <gtest/gtest.h>

#include "chem/fci.hpp"
#include "chem/molecules.hpp"
#include "chem/scf.hpp"
#include "transform/linear_encoding.hpp"
#include "vqe/driver.hpp"
#include "vqe/uccsd.hpp"

namespace femto::vqe {
namespace {

struct VqeSetup {
  chem::SpinOrbitalIntegrals so;
  pauli::PauliSum hamiltonian;
  std::size_t hf_index = 0;
  double scf_energy = 0;
  double fci_energy = 0;
};

[[nodiscard]] VqeSetup make_setup(const chem::Molecule& mol) {
  auto basis = chem::build_sto3g(mol);
  chem::normalize_basis(basis);
  const auto ints = chem::compute_integrals(mol, basis);
  const auto scf = chem::run_rhf(mol, ints);
  const auto mo = chem::transform_to_mo(mol, ints, scf);
  VqeSetup s;
  s.so = chem::to_spin_orbitals(mo);
  const auto enc = transform::LinearEncoding::jordan_wigner(s.so.n);
  s.hamiltonian = enc.map(chem::build_hamiltonian(s.so));
  s.hf_index = (std::size_t{1} << s.so.nelec) - 1;
  s.scf_energy = scf.total_energy;
  s.fci_energy = chem::run_fci(s.so).energy;
  return s;
}

TEST(Uccsd, H2TermGeneration) {
  const VqeSetup s = make_setup(chem::make_h2(1.4));
  const auto terms = uccsd_hmp2_terms(s.so);
  ASSERT_FALSE(terms.empty());
  // Leading term: the paired double 0,1 -> 2,3 (bosonic class).
  EXPECT_TRUE(terms[0].is_double());
  EXPECT_EQ(terms[0].classification(), fermion::ExcitationClass::kBosonic);
  EXPECT_GT(terms[0].mp2_estimate, 0.0);
  // Estimates are non-increasing over the double block.
  for (std::size_t k = 1; k < terms.size(); ++k) {
    if (!terms[k].is_double()) break;
    EXPECT_LE(terms[k].mp2_estimate, terms[k - 1].mp2_estimate + 1e-15);
  }
}

TEST(Uccsd, SzConservation) {
  const VqeSetup s = make_setup(chem::make_lih());
  for (const auto& t : uccsd_hmp2_terms(s.so)) {
    if (t.is_double())
      EXPECT_EQ((t.p % 2) + (t.q % 2), (t.r % 2) + (t.s % 2));
    else
      EXPECT_EQ(t.p % 2, t.r % 2);
  }
}

TEST(VqeDriver, ZeroParametersGiveHartreeFock) {
  const VqeSetup s = make_setup(chem::make_h2(1.4));
  const auto terms = uccsd_hmp2_terms(s.so);
  VqeProblem prob;
  prob.num_qubits = s.so.n;
  prob.hamiltonian = s.hamiltonian;
  prob.reference_index = s.hf_index;
  const auto enc = transform::LinearEncoding::jordan_wigner(s.so.n);
  prob.generators.push_back(enc.map(terms[0].generator()));
  const std::vector<double> zero{0.0};
  EXPECT_NEAR(energy(prob, zero), s.scf_energy, 1e-8);
}

TEST(VqeDriver, GradientMatchesFiniteDifference) {
  const VqeSetup s = make_setup(chem::make_h2(1.4));
  const auto terms = uccsd_hmp2_terms(s.so);
  VqeProblem prob;
  prob.num_qubits = s.so.n;
  prob.hamiltonian = s.hamiltonian;
  prob.reference_index = s.hf_index;
  const auto enc = transform::LinearEncoding::jordan_wigner(s.so.n);
  for (std::size_t k = 0; k < std::min<std::size_t>(3, terms.size()); ++k)
    prob.generators.push_back(enc.map(terms[k].generator()));
  std::vector<double> theta(prob.generators.size());
  for (std::size_t k = 0; k < theta.size(); ++k)
    theta[k] = 0.1 + 0.05 * static_cast<double>(k);
  std::vector<double> grad;
  const double e0 = energy_and_gradient(prob, theta, grad);
  EXPECT_NEAR(e0, energy(prob, theta), 1e-10);
  const double h = 1e-6;
  for (std::size_t k = 0; k < theta.size(); ++k) {
    std::vector<double> tp = theta, tm = theta;
    tp[k] += h;
    tm[k] -= h;
    const double fd = (energy(prob, tp) - energy(prob, tm)) / (2 * h);
    EXPECT_NEAR(grad[k], fd, 1e-5) << "param " << k;
  }
}

TEST(VqeDriver, H2UccsdReachesFci) {
  // H2 UCCSD is exact: the optimized energy must hit FCI.
  const VqeSetup s = make_setup(chem::make_h2(1.4));
  const auto terms = uccsd_hmp2_terms(s.so);
  VqeProblem prob;
  prob.num_qubits = s.so.n;
  prob.hamiltonian = s.hamiltonian;
  prob.reference_index = s.hf_index;
  const auto enc = transform::LinearEncoding::jordan_wigner(s.so.n);
  for (const auto& t : terms) prob.generators.push_back(enc.map(t.generator()));
  std::vector<double> theta(prob.generators.size(), 0.0);
  const OptimizeResult res = minimize_energy(prob, theta);
  EXPECT_NEAR(res.energy, s.fci_energy, 1e-7);
}

TEST(VqeDriver, GrowthCurveMonotoneAndConvergesLih) {
  const VqeSetup s = make_setup(chem::make_lih());
  const auto terms = uccsd_hmp2_terms(s.so);
  const auto enc = transform::LinearEncoding::jordan_wigner(s.so.n);
  std::vector<pauli::PauliSum> gens;
  for (const auto& t : terms) gens.push_back(enc.map(t.generator()));
  const auto curve = growth_curve(s.so.n, s.hamiltonian, gens, s.hf_index, 6);
  ASSERT_EQ(curve.size(), 6u);
  for (std::size_t k = 0; k < curve.size(); ++k) {
    EXPECT_LE(curve[k].energy, s.scf_energy + 1e-9);
    if (k > 0) {
      EXPECT_LE(curve[k].energy, curve[k - 1].energy + 1e-9);
    }
    EXPECT_GE(curve[k].energy, s.fci_energy - 1e-9);
  }
}

}  // namespace
}  // namespace femto::vqe
