// Hardware-target abstraction tests: routing, native-gate lowering, the
// target-parameterized cost model, and the compile-stack integration.
//
// The load-bearing properties:
//  * all_to_all_cnot is a bit-identical regression anchor: same model
//    cost, same circuit, same restart winners as the target-free pipeline.
//  * model-vs-emission consistency: for randomized good-interface rotation
//    block sequences, sequence_model_cost(seq, target) equals the native
//    entangler count of the emitted (and lowered) circuit -- for both
//    unconstrained targets -- and routed emission costs exactly
//    unrouted + 3 * swaps for the nearest-neighbor target.
//  * every lowering/routing pass preserves the unitary, certified by the
//    equivalence checker (symbolically; dense-arbitrated at small n).
#include <gtest/gtest.h>

#include <cmath>

#include "chem/integrals.hpp"
#include "chem/mo_integrals.hpp"
#include "chem/molecules.hpp"
#include "chem/scf.hpp"
#include "circuit/routing.hpp"
#include "common/rng.hpp"
#include "core/pipeline.hpp"
#include "sim/statevector.hpp"
#include "synth/pauli_exponential.hpp"
#include "synth/target.hpp"
#include "verify/equivalence.hpp"
#include "vqe/uccsd.hpp"

namespace femto {
namespace {

using circuit::CouplingMap;
using circuit::Gate;
using circuit::QuantumCircuit;
using pauli::PauliString;
using synth::EntanglerKind;
using synth::HardwareTarget;
using synth::RotationBlock;

// ---- coupling map + router ------------------------------------------------

TEST(CouplingMap, LineDistancesAndHops) {
  const CouplingMap line = CouplingMap::line(5);
  EXPECT_TRUE(line.constrained());
  EXPECT_EQ(line.distance(0, 4), 4u);
  EXPECT_EQ(line.distance(2, 2), 0u);
  EXPECT_TRUE(line.adjacent(1, 2));
  EXPECT_FALSE(line.adjacent(0, 2));
  EXPECT_EQ(line.next_hop(0, 4), 1u);
  EXPECT_EQ(line.next_hop(4, 0), 3u);
  EXPECT_EQ(line.validate(5), "");
  EXPECT_NE(line.validate(6), "");  // device smaller than circuit

  const CouplingMap ring = CouplingMap::ring(6);
  EXPECT_EQ(ring.distance(0, 5), 1u);
  EXPECT_EQ(ring.distance(0, 3), 3u);
}

TEST(CouplingMap, DisconnectedIsDiagnosed) {
  const CouplingMap broken(4, {{0, 1}, {2, 3}});
  EXPECT_NE(broken.validate(4), "");
  EXPECT_NE(broken.validate(4).find("disconnected"), std::string::npos);
}

TEST(Routing, AdjacencyAndPermutationRestore) {
  Rng rng(11);
  const verify::EquivalenceChecker checker;
  for (int rep = 0; rep < 12; ++rep) {
    const std::size_t n = 4 + rng.index(3);  // 4..6
    QuantumCircuit c(n);
    const int gates = 6 + static_cast<int>(rng.index(10));
    for (int g = 0; g < gates; ++g) {
      const std::size_t a = rng.index(n);
      std::size_t b = rng.index(n);
      while (b == a) b = rng.index(n);
      switch (rng.index(4)) {
        case 0: c.append(Gate::cnot(a, b)); break;
        case 1: c.append(Gate::h(a)); break;
        case 2: c.append(Gate::rz(a, rng.uniform(-2, 2), g % 3)); break;
        default: c.append(Gate::xxrot(a, b, rng.uniform(-2, 2), g % 3)); break;
      }
    }
    const CouplingMap line = CouplingMap::line(n);
    const circuit::RoutingResult routed = circuit::route_circuit(c, line);
    EXPECT_TRUE(circuit::respects_coupling(routed.circuit, line));
    // Permutation restored => same unitary; certify it.
    const verify::EquivalenceReport report = checker.check(c, routed.circuit);
    EXPECT_TRUE(report.equivalent()) << report.to_string();
    // Accounting: routed cost = original + 3 CNOTs per inserted SWAP.
    EXPECT_EQ(routed.circuit.cnot_count(),
              c.cnot_count() + 3 * routed.swaps_inserted);
  }
}

TEST(Routing, RingBeatsLineOnWrapAroundPairs) {
  QuantumCircuit c(6);
  c.append(Gate::cnot(0, 5));
  const auto on_line = circuit::route_circuit(c, CouplingMap::line(6));
  const auto on_ring = circuit::route_circuit(c, CouplingMap::ring(6));
  EXPECT_EQ(on_ring.swaps_inserted, 0);
  EXPECT_GT(on_line.swaps_inserted, 0);
}

// ---- native-gate lowering -------------------------------------------------

/// Dense check that two circuits agree on every basis state up to one global
/// phase (small n only).
void expect_same_unitary(const QuantumCircuit& a, const QuantumCircuit& b,
                         int num_params = 0) {
  ASSERT_EQ(a.num_qubits(), b.num_qubits());
  Rng rng(77);
  std::vector<double> params(static_cast<std::size_t>(num_params));
  for (double& p : params) p = rng.uniform(-2.0, 2.0);
  const std::size_t n = a.num_qubits();
  sim::Complex phase{0, 0};
  for (std::size_t input = 0; input < (std::size_t{1} << n); ++input) {
    sim::StateVector sa = sim::StateVector::basis_state(n, input);
    sim::StateVector sb = sim::StateVector::basis_state(n, input);
    sa.apply_circuit(a, params);
    sb.apply_circuit(b, params);
    for (std::size_t i = 0; i < sa.dim(); ++i) {
      if (std::abs(phase) < 0.5 && std::abs(sa.amplitude(i)) > 1e-9 &&
          std::abs(sb.amplitude(i)) > 1e-9)
        phase = sa.amplitude(i) / sb.amplitude(i);
      if (std::abs(phase) > 0.5) {
        EXPECT_NEAR(std::abs(sa.amplitude(i) - phase * sb.amplitude(i)), 0.0,
                    1e-9)
            << "input " << input << " amp " << i;
      }
    }
  }
}

TEST(Lowering, MsUnitImplementsCnot) {
  for (const auto& [c, t] : {std::pair<std::size_t, std::size_t>{0, 1},
                             {1, 0}}) {
    QuantumCircuit cnot(2);
    cnot.append(Gate::cnot(c, t));
    const QuantumCircuit lowered =
        synth::lower_to_target(cnot, HardwareTarget::trapped_ion_xx());
    expect_same_unitary(cnot, lowered);
    EXPECT_EQ(HardwareTarget::trapped_ion_xx().circuit_cost(lowered), 1);
    for (const Gate& g : lowered.gates())
      EXPECT_NE(g.kind, circuit::GateKind::kCnot);
  }
}

TEST(Lowering, EveryTwoQubitKindLowersExactly) {
  const HardwareTarget xx = HardwareTarget::trapped_ion_xx();
  QuantumCircuit all(3);
  all.append(Gate::cnot(0, 1));
  all.append(Gate::cz(1, 2));
  all.append(Gate::swap(0, 2));
  all.append(Gate::xyrot(0, 1, 0.7, 0));
  all.append(Gate::xxrot(1, 2, 0.4, 1));
  const QuantumCircuit lowered = synth::lower_to_target(all, xx);
  for (const Gate& g : lowered.gates())
    EXPECT_TRUE(!g.two_qubit() || g.kind == circuit::GateKind::kXXrot)
        << g.to_string();
  expect_same_unitary(all, lowered, 2);
  // CNOT 1 + CZ 1 + SWAP 3 + XY 2 + XX 1 native pulses.
  EXPECT_EQ(xx.circuit_cost(lowered), 8);
}

TEST(Lowering, RoutedAndLoweredComposes) {
  // A linear_nn-style coupling combined with an XX entangler: route first,
  // then lower; unitary preserved end to end.
  HardwareTarget t;
  t.name = "nn_xx";
  t.entangler = EntanglerKind::kXX;
  t.coupling = CouplingMap::line(4);
  QuantumCircuit c(4);
  c.append(Gate::cnot(0, 3));
  c.append(Gate::rz(1, 0.3, 0));
  c.append(Gate::cnot(1, 2));
  int swaps = 0;
  const QuantumCircuit lowered = synth::lower_to_target(c, t, &swaps);
  EXPECT_GT(swaps, 0);
  expect_same_unitary(c, lowered, 1);
}

// ---- target cost model ----------------------------------------------------

TEST(TargetCostModel, AllToAllDelegatesToLegacy) {
  const HardwareTarget legacy = HardwareTarget::all_to_all_cnot();
  Rng rng(5);
  for (int rep = 0; rep < 50; ++rep) {
    PauliString p(6);
    std::size_t weight = 0;
    while (weight < 2) {
      for (std::size_t q = 0; q < 6; ++q)
        p.set_letter(q, static_cast<pauli::Letter>(rng.index(4)));
      weight = p.weight();
    }
    std::vector<std::size_t> support;
    for (std::size_t q = 0; q < 6; ++q)
      if (p.letter(q) != pauli::Letter::I) support.push_back(q);
    const std::size_t t = support[rng.index(support.size())];
    EXPECT_EQ(synth::string_cost(p, t, legacy), synth::string_cost(p));
  }
}

TEST(TargetCostModel, XxStringCostIs2wMinus3) {
  const HardwareTarget xx = HardwareTarget::trapped_ion_xx();
  EXPECT_EQ(synth::string_cost(PauliString::from_string("XY"), 0, xx), 1);
  EXPECT_EQ(synth::string_cost(PauliString::from_string("XXXY"), 3, xx), 5);
  EXPECT_EQ(synth::string_cost(PauliString::from_string("IZII"), 1, xx), 0);
  // CNOT counterparts: 2, 6, 0.
  EXPECT_EQ(synth::string_cost(PauliString::from_string("XY")), 2);
  EXPECT_EQ(synth::string_cost(PauliString::from_string("XXXY")), 6);
}

TEST(TargetCostModel, XxInterfaceSkipsPartnerWires) {
  // Fig. 4 anchor, re-costed: P1 = XXXY, P2 = XXYX, shared target q3.
  // Partner of both is q2 (highest support != target): CNOT saving 5 loses
  // the omega-1 credit on q2 -> 4 in native pulses.
  const PauliString p1 = PauliString::from_string("XXXY");
  const PauliString p2 = PauliString::from_string("XXYX");
  const HardwareTarget xx = HardwareTarget::trapped_ion_xx();
  EXPECT_EQ(synth::interface_saving(p1, 3, p2, 3), 5);
  EXPECT_EQ(synth::interface_saving(p1, 3, p2, 3, xx), 4);
  // Model sequence cost: 5 + 5 - 4 = 6 pulses (CNOT model: 6 + 6 - 5 = 7).
  std::vector<RotationBlock> seq(2);
  seq[0].string = p1;
  seq[0].target = 3;
  seq[0].angle_coeff = 0.31;
  seq[1].string = p2;
  seq[1].target = 3;
  seq[1].angle_coeff = -0.57;
  EXPECT_EQ(synth::sequence_model_cost(seq, xx), 6);
  const QuantumCircuit c =
      synth::synthesize_sequence(4, seq, synth::MergePolicy::kMerge,
                                 EntanglerKind::kXX);
  EXPECT_EQ(xx.circuit_cost(c), 6);
}

// ---- model-vs-emission property test (satellite) --------------------------

/// Random rotation-block sequence whose consecutive interfaces are either
/// target-disjoint or good collisions (the regime where the model is the
/// exact emission count, for CNOT and XX targets alike). Mirrors the
/// sorter's contract: same-letter strings are never adjacent.
[[nodiscard]] std::vector<RotationBlock> random_good_sequence(Rng& rng,
                                                              std::size_t n,
                                                              int blocks) {
  std::vector<RotationBlock> seq;
  for (int k = 0; k < blocks; ++k) {
    for (int attempt = 0; attempt < 200; ++attempt) {
      PauliString p(n);
      std::size_t weight = 0;
      for (std::size_t q = 0; q < n; ++q)
        p.set_letter(q, static_cast<pauli::Letter>(rng.index(4)));
      weight = p.weight();
      if (weight == 0) continue;
      std::vector<std::size_t> support;
      for (std::size_t q = 0; q < n; ++q)
        if (p.letter(q) != pauli::Letter::I) support.push_back(q);
      RotationBlock b;
      b.string = p;
      b.target = support[rng.index(support.size())];
      b.angle_coeff = rng.uniform(-2, 2);
      b.param = k;  // distinct parameters, as the compiler emits
      if (!seq.empty()) {
        const RotationBlock& prev = seq.back();
        if (prev.string.same_letters(b.string)) continue;
        if (prev.target == b.target &&
            !synth::target_collision_good(prev.string.letter(b.target),
                                          b.string.letter(b.target)))
          continue;  // bad collision: the model is not the emission count
      }
      seq.push_back(std::move(b));
      break;
    }
  }
  return seq;
}

TEST(TargetCostModel, ModelEqualsEmissionForUnconstrainedTargets) {
  Rng rng(20230306);
  const verify::EquivalenceChecker checker;
  const HardwareTarget cnot = HardwareTarget::all_to_all_cnot();
  const HardwareTarget xx = HardwareTarget::trapped_ion_xx();
  for (int rep = 0; rep < 40; ++rep) {
    const std::size_t n = 2 + rng.index(9);  // 2..10 qubits
    const int blocks = 2 + static_cast<int>(rng.index(5));
    const std::vector<RotationBlock> seq = random_good_sequence(rng, n, blocks);
    if (seq.size() < 2) continue;
    const QuantumCircuit c_cnot = synth::synthesize_sequence(
        n, seq, synth::MergePolicy::kMerge, EntanglerKind::kCnot);
    const QuantumCircuit c_xx = synth::synthesize_sequence(
        n, seq, synth::MergePolicy::kMerge, EntanglerKind::kXX);
    EXPECT_EQ(cnot.circuit_cost(c_cnot), synth::sequence_model_cost(seq, cnot))
        << "CNOT target, n=" << n << " rep=" << rep;
    EXPECT_EQ(xx.circuit_cost(c_xx), synth::sequence_model_cost(seq, xx))
        << "XX target, n=" << n << " rep=" << rep;
    // Both emissions implement the same unitary as the spec.
    const verify::CompilationSpec spec = verify::make_spec(seq);
    EXPECT_TRUE(checker.check_spec(c_cnot, spec).equivalent());
    const verify::EquivalenceReport xx_report = checker.check_spec(c_xx, spec);
    EXPECT_TRUE(xx_report.equivalent()) << xx_report.to_string();
  }
}

TEST(TargetCostModel, RoutedEmissionAccountsSwapsExactly) {
  Rng rng(42);
  const verify::EquivalenceChecker checker;
  for (int rep = 0; rep < 15; ++rep) {
    const std::size_t n = 3 + rng.index(6);  // 3..8 qubits
    const int blocks = 2 + static_cast<int>(rng.index(4));
    const std::vector<RotationBlock> seq = random_good_sequence(rng, n, blocks);
    if (seq.empty()) continue;
    const HardwareTarget nn = HardwareTarget::linear_nn(n);
    const QuantumCircuit unrouted = synth::synthesize_sequence(n, seq);
    int swaps = 0;
    const QuantumCircuit routed = synth::lower_to_target(unrouted, nn, &swaps);
    EXPECT_TRUE(circuit::respects_coupling(routed, nn.coupling));
    // Device accounting: routed cost == unrouted cost + 3 per SWAP.
    EXPECT_EQ(nn.circuit_cost(routed),
              nn.circuit_cost(unrouted) + 3 * swaps);
    const verify::EquivalenceReport report =
        checker.check_spec(routed, verify::make_spec(seq));
    EXPECT_TRUE(report.equivalent()) << report.to_string();
  }
}

// ---- option validation (satellite) ----------------------------------------

TEST(Validation, RoutingFreeTargetWithConnectivityIsRejected) {
  HardwareTarget t = HardwareTarget::linear_nn(4);
  t.allow_routing = false;
  const std::string err = t.validate(4);
  EXPECT_NE(err.find("routing is disabled"), std::string::npos) << err;
}

TEST(Validation, CompileOptionDiagnosticsAreSpecific) {
  core::CompileOptions opt;
  EXPECT_EQ(core::validate_options(4, opt), "");

  opt.target = HardwareTarget::linear_nn(4);
  opt.emit_circuit = false;
  EXPECT_NE(core::validate_options(4, opt).find("emit_circuit"),
            std::string::npos);

  opt.emit_circuit = true;
  EXPECT_EQ(core::validate_options(4, opt), "");
  // Device/circuit width mismatches, both directions.
  EXPECT_NE(core::validate_options(5, opt).find("coupling map has"),
            std::string::npos);
  opt.target = HardwareTarget::linear_nn(6);
  EXPECT_NE(core::validate_options(5, opt).find("couples"),
            std::string::npos);

  opt = core::CompileOptions{};
  opt.target.coupling = circuit::CouplingMap(4, {{0, 1}, {2, 3}});
  EXPECT_NE(core::validate_options(4, opt).find("disconnected"),
            std::string::npos);

  opt = core::CompileOptions{};
  opt.gtsp_options.mutation_rate = 1.5;
  EXPECT_NE(core::validate_options(4, opt).find("mutation_rate"),
            std::string::npos);

  core::PipelineOptions po;
  po.restarts = 0;
  EXPECT_NE(po.validate().find("restarts"), std::string::npos);
  po = core::PipelineOptions{};
  po.verify = true;
  po.verify_options.dense_trials = 0;
  EXPECT_NE(po.validate().find("dense_trials"), std::string::npos);
}

// ---- compile-stack integration --------------------------------------------

struct WaterFixture {
  std::size_t n = 0;
  std::vector<fermion::ExcitationTerm> terms;
};

// (The molecule chain is intentionally inline: bench/bench_fixtures.hpp is
// the bench binaries' entry point and not on the test include path.)
WaterFixture water(std::size_t ne) {
  static WaterFixture f;
  if (f.n == 0) {
    const auto mol = chem::make_h2o();
    auto basis = chem::build_sto3g(mol);
    chem::normalize_basis(basis);
    const auto ints = chem::compute_integrals(mol, basis);
    const auto scf = chem::run_rhf(mol, ints);
    const auto mo = chem::transform_to_mo(mol, ints, scf);
    const auto so = chem::to_spin_orbitals(mo);
    f.n = so.n;
    f.terms = vqe::uccsd_hmp2_terms(so);
  }
  FEMTO_EXPECTS(ne <= f.terms.size());
  WaterFixture truncated;
  truncated.n = f.n;
  truncated.terms.assign(f.terms.begin(),
                         f.terms.begin() + static_cast<std::ptrdiff_t>(ne));
  return truncated;
}

core::CompileOptions fast_options() {
  core::CompileOptions opt;
  opt.sa_options.steps = 200;
  opt.gtsp_options.generations = 40;
  opt.pso_options.iterations = 10;
  opt.coloring_orders = 8;
  return opt;
}

TEST(TargetCompile, DefaultTargetIsBitIdenticalAnchor) {
  const WaterFixture& f = water(5);
  const core::CompileOptions opt = fast_options();
  const core::CompileResult plain = core::compile_vqe(f.n, f.terms, opt);
  core::CompileOptions explicit_target = opt;
  explicit_target.target = HardwareTarget::all_to_all_cnot();
  const core::CompileResult anchored =
      core::compile_vqe(f.n, f.terms, explicit_target);
  // Same plan, same costs, same gates -- the target threading changed
  // nothing on the default target.
  EXPECT_EQ(plain.model_cnots, anchored.model_cnots);
  EXPECT_EQ(plain.model_cost, plain.model_cnots);
  EXPECT_EQ(plain.device_cost, plain.emitted_cnots);
  EXPECT_EQ(plain.term_order, anchored.term_order);
  ASSERT_EQ(plain.circuit.size(), anchored.circuit.size());
  EXPECT_TRUE(plain.circuit.gates() == anchored.circuit.gates());
  EXPECT_TRUE(plain.lowered.empty());
}

TEST(TargetCompile, AllThreeTargetsCompileAndCertify) {
  const WaterFixture& f = water(4);
  core::CompileOptions base = fast_options();
  core::PipelineOptions po{.workers = 2, .restarts = 2};
  po.verify = true;
  core::CompilePipeline pipeline(po);
  const std::vector<HardwareTarget> targets = {
      HardwareTarget::all_to_all_cnot(),
      HardwareTarget::trapped_ion_xx(),
      HardwareTarget::linear_nn(f.n),
  };
  const auto results =
      pipeline.compile_best_for_targets(f.n, f.terms, base, targets);
  ASSERT_EQ(results.size(), 3u);
  for (const core::TargetCompileResult& r : results) {
    EXPECT_TRUE(r.result.all_verified()) << r.target.name;
    for (const verify::EquivalenceReport& v : r.result.verification)
      EXPECT_TRUE(v.equivalent()) << r.target.name << ": " << v.to_string();
  }
  // The all-to-all restart winner matches a plain compile_best run.
  const auto plain = pipeline.compile_best(f.n, f.terms, base);
  EXPECT_EQ(results[0].result.best.model_cnots, plain.best.model_cnots);
  EXPECT_EQ(results[0].result.best_restart, plain.best_restart);
  EXPECT_TRUE(results[0].result.best.circuit.gates() ==
              plain.best.circuit.gates());
  // Trapped-ion: native artifact contains no CNOTs, and the pulse model is
  // never worse than the CNOT count of the same plan (the XX model takes
  // the cheaper of its two exact lowering forms per chunk).
  const core::CompileResult& ion = results[1].result.best;
  EXPECT_FALSE(ion.lowered.empty());
  for (const Gate& g : ion.lowered.gates())
    EXPECT_TRUE(!g.two_qubit() || g.kind == circuit::GateKind::kXXrot);
  EXPECT_LE(ion.model_cost, ion.model_cnots);
  // Linear chain: routed artifact respects the coupling and reports swaps.
  const core::CompileResult& nn = results[2].result.best;
  EXPECT_FALSE(nn.lowered.empty());
  EXPECT_TRUE(circuit::respects_coupling(
      nn.lowered, HardwareTarget::linear_nn(f.n).coupling));
  EXPECT_EQ(nn.device_cost, nn.lowered.cnot_count());
}

}  // namespace
}  // namespace femto
