// Tests for the compilation service stack (src/service/): the canonical
// JSON layer, the wire protocol round trip, the request lifecycle state
// machine (exhaustively, every one of the 7x7 edges), and the Service
// scheduler's admission / coalescing / cancellation / deadline / drain
// behavior, ending with a full socket loopback.
//
// The load-bearing property mirrors the pipeline's: a seeded request must
// produce a BYTE-IDENTICAL canonical response whether compiled in-process,
// through a cold service, coalesced with concurrent identical submissions,
// or after the shared cache warmed up -- that is what makes femtod a cache
// you can trust rather than a nondeterministic middleman.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.hpp"
#include "obs/metrics.hpp"
#include "service/client.hpp"
#include "service/server.hpp"

namespace femto {
namespace {

using service::RequestState;

/// A small deterministic UCCSD-shaped scenario (no chemistry stack) that
/// still exercises transform, sorting, compression, synthesis, and
/// verification. ~10 ms per restart -- fast enough to multi-restart.
core::CompileScenario tiny_scenario(const std::string& name) {
  core::CompileScenario s;
  s.name = name;
  s.num_qubits = 4;
  s.terms = {fermion::ExcitationTerm::make_double(2, 3, 0, 1),
             fermion::ExcitationTerm::single(2, 0),
             fermion::ExcitationTerm::single(3, 1)};
  s.options.transform = core::TransformKind::kAdvanced;
  s.options.sorting = core::SortingMode::kAdvanced;
  s.options.compression = core::CompressionMode::kHybrid;
  s.options.coloring_orders = 8;
  s.options.sa_options.steps = 150;
  s.options.pso_options.particles = 6;
  s.options.pso_options.iterations = 6;
  s.options.gtsp_options.population = 8;
  s.options.gtsp_options.generations = 15;
  s.options.emit_circuit = true;
  return s;
}

core::CompileRequest tiny_request(const std::string& name,
                                  std::size_t restarts = 1,
                                  std::uint64_t seed = 20230306) {
  core::CompileRequest r;
  r.scenarios = {tiny_scenario(name)};
  r.restarts = restarts;
  r.seed = seed;
  return r;
}

std::string canonical(const core::CompileResponse& response) {
  return service::protocol::encode_response(
             service::protocol::summarize(response, /*include_circuits=*/true))
      .encode();
}

/// Polls a ticket until it reaches `want` (terminal states stick, so a
/// missed intermediate observation fails loudly instead of hanging).
bool wait_for_state(const std::shared_ptr<service::Ticket>& t,
                    RequestState want, int timeout_ms = 10000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const RequestState s = t->state();
    if (s == want) return true;
    if (service::is_terminal(s)) return false;
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

// --- canonical JSON ---------------------------------------------------------

TEST(ServiceJson, EncodeParseIdentity) {
  const std::string text =
      R"({"a":1,"b":-2.5,"c":1e-3,"d":"x\"y\\z","e":[true,false,null],)"
      R"("f":{"nested":[1,2,3]},"g":18446744073709551615})";
  std::string err;
  const auto v = service::json::parse(text, &err);
  ASSERT_TRUE(v.has_value()) << err;
  // Canonical re-encode of canonical input is the identity -- the property
  // that makes value equality testable as byte equality.
  EXPECT_EQ(v->encode(), text);
  // u64 values survive losslessly (doubles would not hold 2^64-1).
  const service::json::Value* g = v->find("g");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->as_u64(), std::optional<std::uint64_t>(18446744073709551615u));
}

TEST(ServiceJson, RejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,2", "{\"a\":}", "{\"a\":1,}", "tru", "1 2",
        "{\"a\":1}trailing", "\"unterminated", "{\"a\":+1}", "[01]",
        "nulll", "{\"\\q\":1}"}) {
    std::string err;
    EXPECT_FALSE(service::json::parse(bad, &err).has_value())
        << "accepted malformed input: " << bad;
    EXPECT_FALSE(err.empty());
  }
  // Depth bomb: parser must refuse, not overflow the stack.
  std::string deep(1000, '[');
  deep += std::string(1000, ']');
  EXPECT_FALSE(service::json::parse(deep).has_value());
}

// --- protocol round trip ----------------------------------------------------

core::CompileScenario random_scenario(std::mt19937& rng, int index) {
  std::uniform_int_distribution<int> coin(0, 1);
  std::uniform_int_distribution<int> small(0, 3);
  core::CompileScenario s;
  s.name = "rand-" + std::to_string(index);
  s.num_qubits = 6;
  s.terms = {fermion::ExcitationTerm::make_double(4, 5, 0, 1),
             fermion::ExcitationTerm::single(
                 4, static_cast<std::size_t>(small(rng)))};
  s.terms[0].mp2_estimate = 0.25 + 0.125 * small(rng);
  const core::TransformKind transforms[] = {
      core::TransformKind::kJordanWigner, core::TransformKind::kBravyiKitaev,
      core::TransformKind::kBaselineGT, core::TransformKind::kAdvanced};
  s.options.transform = transforms[small(rng)];
  s.options.sorting = coin(rng) != 0 ? core::SortingMode::kAdvanced
                                     : core::SortingMode::kBaseline;
  s.options.compression = coin(rng) != 0 ? core::CompressionMode::kHybrid
                                         : core::CompressionMode::kNone;
  s.options.coloring_orders = 1 + small(rng);
  s.options.sa_options.steps = 10 + small(rng);
  s.options.sa_options.t_initial = 1.5;
  s.options.pso_options.inertia = 0.5 + 0.0625 * small(rng);
  s.options.gtsp_options.mutation_rate = 0.125;
  s.options.seed = coin(rng) != 0 ? 0xFFFFFFFFFFFFFFFFull
                                  : static_cast<std::uint64_t>(rng());
  s.options.emit_circuit = coin(rng) != 0;
  if (coin(rng) != 0) {
    s.options.target = synth::HardwareTarget::trapped_ion_xx();
  } else if (coin(rng) != 0) {
    s.options.target = synth::HardwareTarget::linear_nn(6);
    s.options.emit_circuit = true;  // constrained targets must emit
  }
  return s;
}

TEST(ServiceProtocol, RequestRoundTripIsByteIdentical) {
  std::mt19937 rng(7);
  for (int trial = 0; trial < 25; ++trial) {
    core::CompileRequest request;
    const int scenario_count = 1 + static_cast<int>(rng() % 3);
    for (int i = 0; i < scenario_count; ++i)
      request.scenarios.push_back(random_scenario(rng, trial * 10 + i));
    if (rng() % 2 == 0)
      request.targets = {synth::HardwareTarget::all_to_all_cnot(),
                         synth::HardwareTarget::trapped_ion_xx()};
    request.restarts = 1 + rng() % 4;
    if (rng() % 2 == 0) request.seed = 0xFFFFFFFFFFFFFFFFull;
    request.deadline_s = (rng() % 2 == 0) ? 12.5 : 0.0;
    request.verify = rng() % 2 == 0;

    const std::string encoded =
        service::protocol::encode_request(request).encode();
    const auto parsed = service::json::parse(encoded);
    ASSERT_TRUE(parsed.has_value());
    core::CompileRequest decoded;
    std::string err;
    ASSERT_TRUE(service::protocol::decode_request(*parsed, decoded, err))
        << err;
    // Byte-identical re-encode == field-faithful decode, including every
    // solver knob and double (shortest-round-trip number tokens).
    EXPECT_EQ(service::protocol::encode_request(decoded).encode(), encoded);
  }
}

TEST(ServiceProtocol, DecodeRejectsBadInput) {
  auto decode = [](const std::string& text) {
    const auto v = service::json::parse(text);
    if (!v.has_value()) return std::string("unparseable");
    core::CompileRequest out;
    std::string err;
    if (service::protocol::decode_request(*v, out, err)) return std::string();
    return err.empty() ? std::string("?") : err;
  };
  EXPECT_NE(decode(R"({"scenarios":0})"), "");
  EXPECT_NE(decode(R"({"scenarios":[{"num_qubits":"x"}]})"), "");
  EXPECT_NE(decode(
                R"({"scenarios":[{"name":"a","num_qubits":4,"terms":)"
                R"([["q",0,1,0]],"options":{}}]})"),
            "");
  EXPECT_NE(
      decode(R"({"scenarios":[{"name":"a","num_qubits":4,"terms":[],)"
             R"("options":{"transform":"quantum"}}]})"),
      "");
  // Coupling edge endpoint out of range.
  EXPECT_NE(
      decode(R"({"scenarios":[],"targets":[{"name":"t","entangler":"cnot",)"
             R"("allow_routing":true,"routing_weight":3,)"
             R"("coupling":{"n":2,"edges":[[0,5]]}}]})"),
      "");
  EXPECT_NE(decode(R"({"restarts":-3})"), "");
  EXPECT_EQ(decode(R"({"scenarios":[]})"), "");  // empty but well-formed
}

TEST(ServiceProtocol, ResponseRoundTripCarriesCircuits) {
  core::CompilePipeline pipeline({.workers = 2});
  core::CompileRequest request = tiny_request("roundtrip", 2);
  request.verify = true;
  const core::CompileResponse response = pipeline.compile(request);
  ASSERT_TRUE(response.done());

  const service::protocol::WireResponse wire =
      service::protocol::summarize(response, /*include_circuits=*/true);
  ASSERT_EQ(wire.outcomes.size(), 1u);
  EXPECT_TRUE(wire.outcomes[0].verified.value_or(false));
  ASSERT_FALSE(wire.outcomes[0].circuit_hex.empty());

  const std::string encoded =
      service::protocol::encode_response(wire).encode();
  const auto parsed = service::json::parse(encoded);
  ASSERT_TRUE(parsed.has_value());
  service::protocol::WireResponse decoded;
  std::string err;
  ASSERT_TRUE(service::protocol::decode_response(*parsed, decoded, err))
      << err;
  EXPECT_EQ(service::protocol::encode_response(decoded).encode(), encoded);

  // The shipped circuit decodes into the exact emitted gate sequence.
  const auto circuit = service::protocol::decode_wire_circuit(
      decoded.outcomes[0].circuit_hex);
  ASSERT_TRUE(circuit.has_value());
  EXPECT_EQ(circuit->gates(),
            response.outcomes[0].result.best.final_circuit().gates());
}

// --- lifecycle: the whole 7x7 edge table ------------------------------------

TEST(ServiceLifecycle, EveryEdgeMatchesTheWhitelist) {
  using service::RequestLifecycle;
  struct Edge {
    RequestState from, to;
  };
  const Edge allowed[] = {
      {RequestState::kQueued, RequestState::kAdmitted},
      {RequestState::kQueued, RequestState::kRejected},
      {RequestState::kQueued, RequestState::kCancelled},
      {RequestState::kQueued, RequestState::kDeadlineExceeded},
      {RequestState::kAdmitted, RequestState::kRunning},
      {RequestState::kAdmitted, RequestState::kCancelled},
      {RequestState::kAdmitted, RequestState::kDeadlineExceeded},
      {RequestState::kRunning, RequestState::kDone},
      {RequestState::kRunning, RequestState::kCancelled},
      {RequestState::kRunning, RequestState::kDeadlineExceeded},
  };
  // A legal driving path into every state.
  auto drive_to = [](RequestState target) {
    RequestLifecycle lc;
    switch (target) {
      case RequestState::kQueued: break;
      case RequestState::kAdmitted: lc.advance(RequestState::kAdmitted); break;
      case RequestState::kRunning:
        lc.advance(RequestState::kAdmitted);
        lc.advance(RequestState::kRunning);
        break;
      case RequestState::kDone:
        lc.advance(RequestState::kAdmitted);
        lc.advance(RequestState::kRunning);
        lc.advance(RequestState::kDone);
        break;
      case RequestState::kCancelled: lc.advance(RequestState::kCancelled); break;
      case RequestState::kDeadlineExceeded:
        lc.advance(RequestState::kDeadlineExceeded);
        break;
      case RequestState::kRejected: lc.advance(RequestState::kRejected); break;
    }
    return lc;
  };
  int allowed_seen = 0;
  for (int f = 0; f < service::kRequestStateCount; ++f) {
    for (int t = 0; t < service::kRequestStateCount; ++t) {
      const auto from = static_cast<RequestState>(f);
      const auto to = static_cast<RequestState>(t);
      bool expect_allowed = false;
      for (const Edge& e : allowed)
        if (e.from == from && e.to == to) expect_allowed = true;
      EXPECT_EQ(service::transition_allowed(from, to), expect_allowed)
          << service::to_string(from) << " -> " << service::to_string(to);
      RequestLifecycle lc = drive_to(from);
      ASSERT_EQ(lc.state(), from);
      EXPECT_EQ(lc.try_advance(to), expect_allowed)
          << service::to_string(from) << " -> " << service::to_string(to);
      EXPECT_EQ(lc.state(), expect_allowed ? to : from)
          << "forbidden edge must not move the state";
      if (expect_allowed) ++allowed_seen;
    }
  }
  EXPECT_EQ(allowed_seen, 10) << "whitelist size drifted";
  // Terminal states absorb: no outgoing edge whatsoever.
  for (const RequestState s :
       {RequestState::kDone, RequestState::kCancelled,
        RequestState::kDeadlineExceeded, RequestState::kRejected}) {
    EXPECT_TRUE(service::is_terminal(s));
    for (int t = 0; t < service::kRequestStateCount; ++t)
      EXPECT_FALSE(
          service::transition_allowed(s, static_cast<RequestState>(t)));
  }
  for (int i = 0; i < service::kRequestStateCount; ++i) {
    const auto s = static_cast<RequestState>(i);
    EXPECT_EQ(service::parse_request_state(service::to_string(s)), s);
  }
}

// --- service scheduler ------------------------------------------------------

service::ServiceOptions small_service() {
  service::ServiceOptions o;
  o.pipeline = {.workers = 2};
  return o;
}

TEST(Service, ServedPlanIsByteIdenticalToInProcessCompile) {
  core::CompileRequest request = tiny_request("identity", 3);
  request.verify = true;

  core::CompilePipeline reference({.workers = 2});
  const std::string expected = canonical(reference.compile(request));

  service::Service svc(small_service());
  const auto ticket = svc.submit(request);
  const core::CompileResponse& served = ticket->wait();
  EXPECT_EQ(ticket->state(), RequestState::kDone);
  EXPECT_FALSE(ticket->coalesced());
  EXPECT_EQ(canonical(served), expected);

  // Same request again: the service cache is warm now (synthesis memo
  // hits), and the answer must still be the same bytes.
  const auto warm = svc.submit(request);
  EXPECT_EQ(canonical(warm->wait()), expected);

  const service::ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.done, 2u);
  EXPECT_EQ(stats.works_run, 2u);
  EXPECT_EQ(stats.terminals(), stats.submitted);
}

TEST(Service, InvalidRequestRejectsBeforeQueueing) {
  service::Service svc(small_service());
  core::CompileRequest bad = tiny_request("bad");
  bad.restarts = 0;
  bool callback_fired = false;
  const auto ticket = svc.submit(bad, [&](service::Ticket& t) {
    callback_fired = true;
    EXPECT_EQ(t.state(), RequestState::kRejected);
  });
  EXPECT_EQ(ticket->state(), RequestState::kRejected);
  EXPECT_TRUE(callback_fired) << "rejection callback must fire synchronously";
  EXPECT_NE(ticket->wait().detail.find("invalid request"), std::string::npos);
  EXPECT_EQ(svc.stats().rejected, 1u);
  EXPECT_EQ(svc.stats().works_run, 0u);
}

TEST(Service, QueueFullRejectsLoudly) {
  service::ServiceOptions options = small_service();
  options.max_queue = 2;
  service::Service svc(options);
  // Occupy the scheduler so subsequent submits stay queued.
  const auto blocker = svc.submit(tiny_request("blocker", 64));
  ASSERT_TRUE(wait_for_state(blocker, RequestState::kRunning));
  const auto q1 = svc.submit(tiny_request("q1"));
  const auto q2 = svc.submit(tiny_request("q2"));
  const auto overflow = svc.submit(tiny_request("q3"));
  EXPECT_EQ(overflow->state(), RequestState::kRejected);
  EXPECT_NE(overflow->wait().detail.find("queue full"), std::string::npos);
  svc.cancel(blocker);
  EXPECT_TRUE(q1->wait().done());
  EXPECT_TRUE(q2->wait().done());
  EXPECT_EQ(svc.stats().rejected, 1u);
}

TEST(Service, CancelWhileQueuedNeverRuns) {
  service::Service svc(small_service());
  const auto blocker = svc.submit(tiny_request("blocker", 64));
  ASSERT_TRUE(wait_for_state(blocker, RequestState::kRunning));
  const auto victim = svc.submit(tiny_request("victim"));
  EXPECT_EQ(victim->state(), RequestState::kQueued);
  svc.cancel(victim);
  EXPECT_EQ(victim->state(), RequestState::kCancelled);
  EXPECT_EQ(victim->wait().status, core::RequestStatus::kCancelled);
  svc.cancel(blocker);
  svc.drain(/*cancel_queued=*/false);
  // The victim's work was dropped before running: only the blocker ran.
  EXPECT_EQ(svc.stats().works_run, 1u);
  EXPECT_EQ(svc.stats().cancelled, 2u);
}

TEST(Service, CancelDuringRunningStopsAtRestartBoundary) {
  service::Service svc(small_service());
  const auto started = std::chrono::steady_clock::now();
  const auto ticket = svc.submit(tiny_request("cancel-running", 500));
  ASSERT_TRUE(wait_for_state(ticket, RequestState::kRunning));
  svc.cancel(ticket);
  EXPECT_EQ(ticket->state(), RequestState::kCancelled);
  svc.drain(/*cancel_queued=*/false);  // scheduler observed the flag and quit
  const auto elapsed = std::chrono::steady_clock::now() - started;
  // 500 restarts would take many seconds; cooperative cancel must cut the
  // run short at a restart boundary.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(),
            30);
  EXPECT_EQ(svc.stats().cancelled, 1u);
  EXPECT_EQ(svc.stats().works_run, 1u);
}

TEST(Service, DeadlineExceededMidRequest) {
  service::Service svc(small_service());
  core::CompileRequest request = tiny_request("deadline-mid", 2000);
  request.deadline_s = 0.15;
  const auto ticket = svc.submit(request);
  const core::CompileResponse& response = ticket->wait();
  EXPECT_EQ(ticket->state(), RequestState::kDeadlineExceeded);
  EXPECT_EQ(response.status, core::RequestStatus::kDeadlineExceeded);
  EXPECT_NE(response.detail.find("restart job"), std::string::npos)
      << response.detail;
  ASSERT_EQ(response.outcomes.size(), 1u);
  EXPECT_LT(response.outcomes[0].restarts_completed, 2000u)
      << "deadline must interrupt the restart sweep";
}

TEST(Service, DeadlineExpiredWhileQueued) {
  service::Service svc(small_service());
  // A long blocker (cancelled below, after the victim's budget is spent)
  // guarantees the victim's entire deadline elapses in the queue.
  const auto blocker = svc.submit(tiny_request("blocker", 5000));
  ASSERT_TRUE(wait_for_state(blocker, RequestState::kRunning));
  core::CompileRequest request = tiny_request("deadline-queued");
  request.deadline_s = 0.001;  // expires while waiting behind the blocker
  const auto ticket = svc.submit(request);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  svc.cancel(blocker);
  const core::CompileResponse& response = ticket->wait();
  EXPECT_EQ(ticket->state(), RequestState::kDeadlineExceeded);
  EXPECT_NE(response.detail.find("queued"), std::string::npos)
      << response.detail;
  EXPECT_TRUE(response.outcomes.empty()) << "no restart may have run";
}

TEST(Service, DrainWithQueuedWorkCancelsItAndStopsAdmission) {
  service::Service svc(small_service());
  const auto blocker = svc.submit(tiny_request("blocker", 32));
  ASSERT_TRUE(wait_for_state(blocker, RequestState::kRunning));
  const auto q1 = svc.submit(tiny_request("q1"));
  const auto q2 = svc.submit(tiny_request("q2"));
  svc.drain(/*cancel_queued=*/true);
  // Queued work was cancelled; the in-flight blocker ran to completion
  // (graceful drain never kills running work).
  EXPECT_EQ(q1->state(), RequestState::kCancelled);
  EXPECT_EQ(q2->state(), RequestState::kCancelled);
  EXPECT_EQ(blocker->state(), RequestState::kDone);
  EXPECT_TRUE(svc.draining());
  const auto late = svc.submit(tiny_request("late"));
  EXPECT_EQ(late->state(), RequestState::kRejected);
  EXPECT_NE(late->wait().detail.find("draining"), std::string::npos);
}

TEST(Service, CoalescingHammerServesOneExecutionToEveryone) {
  core::CompileRequest request = tiny_request("hammer", 2);
  request.verify = true;
  core::CompilePipeline reference({.workers = 2});
  const std::string expected = canonical(reference.compile(request));

  service::Service svc(small_service());
  const auto blocker = svc.submit(tiny_request("blocker", 64));
  ASSERT_TRUE(wait_for_state(blocker, RequestState::kRunning));

  // N identical requests submitted from N threads while the scheduler is
  // busy: the first queues, the rest must coalesce onto it.
  constexpr int kClients = 6;
  std::vector<std::shared_ptr<service::Ticket>> tickets(kClients);
  {
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (int i = 0; i < kClients; ++i)
      threads.emplace_back(
          [&, i] { tickets[i] = svc.submit(request); });
    for (std::thread& t : threads) t.join();
  }
  svc.cancel(blocker);

  int coalesced_count = 0;
  for (const auto& t : tickets) {
    const core::CompileResponse& response = t->wait();
    EXPECT_EQ(t->state(), RequestState::kDone);
    EXPECT_EQ(canonical(response), expected)
        << "every coalesced client must receive bit-identical plans";
    if (t->coalesced()) ++coalesced_count;
  }
  EXPECT_EQ(coalesced_count, kClients - 1);
  const service::ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.coalesced, static_cast<std::uint64_t>(kClients - 1));
  // blocker + ONE hammer execution, not six.
  EXPECT_EQ(stats.works_run, 2u);
  EXPECT_EQ(stats.terminals(), stats.submitted);
}

TEST(Service, DifferentSeedsDoNotCoalesce) {
  service::Service svc(small_service());
  const auto blocker = svc.submit(tiny_request("blocker", 32));
  ASSERT_TRUE(wait_for_state(blocker, RequestState::kRunning));
  const auto a = svc.submit(tiny_request("same", 1, 1));
  const auto b = svc.submit(tiny_request("same", 1, 2));
  EXPECT_FALSE(b->coalesced()) << "different seeds are different requests";
  svc.cancel(blocker);
  EXPECT_TRUE(a->wait().done());
  EXPECT_TRUE(b->wait().done());
  EXPECT_EQ(svc.stats().coalesced, 0u);
}

// --- socket loopback --------------------------------------------------------

TEST(ServiceSocket, LoopbackCompileMatchesInProcess) {
  const std::string socket_path =
      "/tmp/femtod-test-" + std::to_string(::getpid()) + ".sock";
  service::SocketServer server(
      {.socket_path = socket_path, .service = small_service()});
  ASSERT_EQ(server.start(), "");
  std::thread runner([&] { server.run(); });
  // Early ASSERT returns must still stop the server and join the thread.
  struct Joiner {
    service::SocketServer& server;
    std::thread& thread;
    ~Joiner() {
      server.request_shutdown(false);
      if (thread.joinable()) thread.join();
    }
  } joiner{server, runner};

  auto conn = service::wait_for_server(socket_path);
  ASSERT_TRUE(conn.has_value());
  service::CompileClient client(std::move(*conn));
  EXPECT_TRUE(client.ping());

  // Malformed and ill-typed lines get error replies, not disconnects.
  ASSERT_TRUE(client.connection().send_line("{not json"));
  auto reply = client.connection().recv_line(5000);
  ASSERT_TRUE(reply.has_value());
  EXPECT_NE(reply->find("\"ok\":false"), std::string::npos);
  ASSERT_TRUE(client.connection().send_line(R"({"op":"compile","id":"x"})"));
  reply = client.connection().recv_line(5000);
  ASSERT_TRUE(reply.has_value());
  EXPECT_NE(reply->find("\"ok\":false"), std::string::npos);
  ASSERT_TRUE(
      client.connection().send_line(R"({"op":"cancel","id":"ghost"})"));
  reply = client.connection().recv_line(5000);
  ASSERT_TRUE(reply.has_value());
  EXPECT_NE(reply->find("unknown request id"), std::string::npos);

  core::CompileRequest request = tiny_request("loopback", 2);
  request.verify = true;
  core::CompilePipeline reference({.workers = 2});
  const std::string expected = canonical(reference.compile(request));

  std::string err;
  const auto served = client.compile(request, "r1", err,
                                     /*include_circuit=*/true);
  ASSERT_TRUE(served.has_value()) << err;
  EXPECT_EQ(served->state, RequestState::kDone);
  EXPECT_EQ(served->canonical_response, expected)
      << "socket transport must not perturb the canonical bytes";

  const auto stats = client.stats();
  ASSERT_TRUE(stats.has_value());
  const service::json::Value* done = stats->find("done");
  ASSERT_NE(done, nullptr);
  EXPECT_EQ(done->as_u64().value_or(0), 1u);

  EXPECT_TRUE(client.shutdown());
}

// ---- hostile-input robustness ---------------------------------------------

/// Truncation property: the canonical encoding consumes its full input, so
/// EVERY strict prefix of a valid protocol line must fail json::parse with
/// a non-empty diagnostic -- never crash, never yield a value a decoder
/// could partially apply.
TEST(ServiceProtocol, EveryStrictPrefixIsRejectedLoudly) {
  core::CompileRequest request = tiny_request("prefix", 1);
  service::json::Value envelope = service::json::Value::object();
  envelope.set("op", service::json::Value::string("compile"));
  envelope.set("id", service::json::Value::string("p1"));
  envelope.set("request", service::protocol::encode_request(request));
  core::CompilePipeline reference({.workers = 2});
  const std::string messages[] = {
      envelope.encode(),
      canonical(reference.compile(request)),
  };
  for (const std::string& msg : messages) {
    ASSERT_GT(msg.size(), 2u);
    for (std::size_t len = 0; len < msg.size(); ++len) {
      std::string err;
      const auto parsed = service::json::parse(msg.substr(0, len), &err);
      EXPECT_FALSE(parsed.has_value())
          << "strict prefix of length " << len << " parsed";
      EXPECT_FALSE(err.empty()) << "rejection must carry a diagnostic";
    }
  }
}

/// Bit-flip property: single-byte corruption anywhere in a valid message
/// must never crash and never half-apply -- either the parse fails loudly,
/// or the (valid-JSON-again) result decodes fully or is rejected with a
/// non-empty diagnostic. Runs under ASan/UBSan in CI like the rest of the
/// suite.
TEST(ServiceProtocol, SingleByteCorruptionNeverCrashesOrPartiallyApplies) {
  core::CompileRequest request = tiny_request("bitflip", 1);
  service::json::Value req_envelope =
      service::protocol::encode_request(request);
  core::CompilePipeline reference({.workers = 2});
  const core::CompileResponse response = reference.compile(request);
  const service::json::Value resp_envelope = service::protocol::encode_response(
      service::protocol::summarize(response, /*include_circuits=*/true));
  const std::string req_line = req_envelope.encode();
  const std::string resp_line = resp_envelope.encode();
  for (int which = 0; which < 2; ++which) {
    const std::string& line = which == 0 ? req_line : resp_line;
    for (std::size_t i = 0; i < line.size(); ++i) {
      for (int bit = 0; bit < 8; ++bit) {
        std::string mutated = line;
        mutated[i] = static_cast<char>(mutated[i] ^ (1 << bit));
        if (mutated == line) continue;
        std::string err;
        const auto parsed = service::json::parse(mutated, &err);
        if (!parsed.has_value()) {
          EXPECT_FALSE(err.empty()) << "silent parse rejection at byte " << i;
          continue;
        }
        // Still valid JSON: the typed decoder must now fully accept or
        // loudly reject.
        err.clear();
        if (which == 0) {
          core::CompileRequest out;
          if (!service::protocol::decode_request(*parsed, out, err)) {
            EXPECT_FALSE(err.empty()) << "silent decode rejection, byte " << i;
          }
        } else {
          service::protocol::WireResponse out;
          if (!service::protocol::decode_response(*parsed, out, err)) {
            EXPECT_FALSE(err.empty()) << "silent decode rejection, byte " << i;
          }
        }
      }
    }
  }
}

TEST(ServiceSocket, OversizedLineIsRejectedLoudlyAndConnectionCloses) {
  const std::string socket_path =
      "/tmp/femtod-maxline-" + std::to_string(::getpid()) + ".sock";
  service::SocketServer server({.socket_path = socket_path,
                                .service = small_service(),
                                .max_line_bytes = 4096});
  ASSERT_EQ(server.start(), "");
  std::thread runner([&] { server.run(); });
  struct Joiner {
    service::SocketServer& server;
    std::thread& thread;
    ~Joiner() {
      server.request_shutdown(false);
      if (thread.joinable()) thread.join();
    }
  } joiner{server, runner};

  auto conn = service::wait_for_server(socket_path);
  ASSERT_TRUE(conn.has_value());
  // Stream >max_line_bytes of junk with no newline: the daemon must answer
  // with a loud protocol error and hang up, not buffer forever.
  const std::string junk(8192, 'x');
  ASSERT_TRUE(conn->send_line(junk));  // send_line appends the newline LAST
  const auto reply = conn->recv_line(5000);
  ASSERT_TRUE(reply.has_value());
  EXPECT_NE(reply->find("protocol error"), std::string::npos) << *reply;
  EXPECT_NE(reply->find("closing connection"), std::string::npos);
  EXPECT_FALSE(conn->recv_line(5000).has_value()) << "connection must close";

  // A fresh connection still serves: the daemon survived the hostile peer.
  auto healthy = service::wait_for_server(socket_path, 2000);
  ASSERT_TRUE(healthy.has_value());
  service::CompileClient client(std::move(*healthy));
  EXPECT_TRUE(client.ping());
}

TEST(ServiceSocket, RetryingClientSurvivesInjectedConnectionDrops) {
  const std::string socket_path =
      "/tmp/femtod-retry-" + std::to_string(::getpid()) + ".sock";
  service::SocketServer server(
      {.socket_path = socket_path, .service = small_service()});
  ASSERT_EQ(server.start(), "");
  std::thread runner([&] { server.run(); });
  struct Joiner {
    service::SocketServer& server;
    std::thread& thread;
    ~Joiner() {
      fail::registry().disarm_all();
      server.request_shutdown(false);
      if (thread.joinable()) thread.join();
    }
  } joiner{server, runner};

  core::CompileRequest request = tiny_request("retry", 2);
  core::CompilePipeline reference({.workers = 2});
  const std::string expected = canonical(reference.compile(request));

  // Arm service.recv THROUGH the wire op (end-to-end chaos control plane),
  // then drive a retrying client until it lands a full result.
  {
    auto conn = service::wait_for_server(socket_path);
    ASSERT_TRUE(conn.has_value());
    service::CompileClient admin(std::move(*conn));
    std::string err;
    const auto listed = admin.failpoints("service.recv:0.25:7", "", err);
    ASSERT_TRUE(listed.has_value()) << err;
    const service::json::Value* points = listed->find("failpoints");
    ASSERT_NE(points, nullptr);
    ASSERT_NE(points->find("service.recv"), nullptr);
  }

  service::RetryPolicy policy;
  policy.max_attempts = 50;
  policy.base_delay_s = 0.001;
  policy.max_delay_s = 0.02;
  policy.seed = 11;
  service::CompileClient client(socket_path, policy);
  const std::uint64_t retries_before =
      obs::registry().counter("service.retries").value();
  std::string err;
  const auto served =
      client.compile_retry(request, "rt1", err, /*include_circuit=*/true);
  ASSERT_TRUE(served.has_value()) << err;
  EXPECT_EQ(served->state, RequestState::kDone);
  EXPECT_EQ(served->canonical_response, expected)
      << "retried serving must stay bit-identical";

  // Disarm over the wire and confirm a clean second compile.
  {
    service::CompileClient admin(socket_path, service::RetryPolicy{});
    ASSERT_EQ(admin.connect(), "");
    std::string derr;
    ASSERT_TRUE(admin.failpoints("", "all", derr).has_value()) << derr;
  }
  const auto clean = client.compile_retry(request, "rt2", err,
                                          /*include_circuit=*/true);
  ASSERT_TRUE(clean.has_value()) << err;
  EXPECT_EQ(clean->canonical_response, expected);
  // The armed phase almost certainly forced at least one retry; only
  // require the counters to be monotone so the test cannot flake.
  EXPECT_GE(obs::registry().counter("service.retries").value(),
            retries_before);
}

TEST(ServiceSocket, MalformedFailpointSpecIsRejectedOverTheWire) {
  const std::string socket_path =
      "/tmp/femtod-fpbad-" + std::to_string(::getpid()) + ".sock";
  service::SocketServer server(
      {.socket_path = socket_path, .service = small_service()});
  ASSERT_EQ(server.start(), "");
  std::thread runner([&] { server.run(); });
  struct Joiner {
    service::SocketServer& server;
    std::thread& thread;
    ~Joiner() {
      server.request_shutdown(false);
      if (thread.joinable()) thread.join();
    }
  } joiner{server, runner};

  auto conn = service::wait_for_server(socket_path);
  ASSERT_TRUE(conn.has_value());
  service::CompileClient client(std::move(*conn));
  std::string err;
  EXPECT_FALSE(client.failpoints("bogus:2.5", "", err).has_value());
  EXPECT_NE(err.find("outside [0, 1]"), std::string::npos) << err;
  EXPECT_FALSE(client.failpoints("", "never.armed.name", err).has_value());
  EXPECT_NE(err.find("no armed failpoint"), std::string::npos) << err;
}

}  // namespace
}  // namespace femto
