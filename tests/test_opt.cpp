// Tests for the solver library: simulated annealing, GTSP GA, binary PSO.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "opt/binary_pso.hpp"
#include "opt/gtsp.hpp"
#include "opt/simulated_annealing.hpp"

namespace femto::opt {
namespace {

TEST(SimulatedAnnealing, FindsMinimumOfRuggedFunction) {
  // Integer lattice with many local minima: f(x) = (x-17)^2/10 + 3 sin(x).
  Rng rng(1);
  const auto energy = [](const int& x) {
    return (x - 17) * (x - 17) / 10.0 + 3.0 * std::sin(static_cast<double>(x));
  };
  const auto propose = [](const int& x, Rng& r) {
    return x + r.range(-3, 3);
  };
  const auto res = simulated_annealing<int>(
      100, energy, propose, rng, {.t_initial = 5, .t_final = 0.01,
                                  .steps = 4000, .reheat_interval = 0});
  // Global minimum near x = 17 +- a few (the sine shifts it); brute force:
  double best = 1e18;
  int best_x = 0;
  for (int x = -50; x <= 80; ++x)
    if (energy(x) < best) {
      best = energy(x);
      best_x = x;
    }
  EXPECT_NEAR(res.best_energy, best, 1e-12);
  EXPECT_EQ(res.best, best_x);
}

TEST(SimulatedAnnealing, KeepsBestEverSeen) {
  Rng rng(2);
  const auto energy = [](const int& x) { return static_cast<double>(x * x); };
  const auto propose = [](const int& x, Rng& r) { return x + r.range(-5, 5); };
  const auto res = simulated_annealing<int>(40, energy, propose, rng,
                                            {.t_initial = 50,
                                             .t_final = 1.0,
                                             .steps = 500,
                                             .reheat_interval = 100});
  EXPECT_LE(res.best_energy, energy(40));
}

/// Builds a planted GTSP instance: clusters of `k` vertices each; the
/// planted tour (vertex 0 of each cluster, in cluster order) carries weight
/// 10 per edge, everything else a small deterministic background.
[[nodiscard]] GtspInstance planted_instance(std::size_t clusters,
                                            std::size_t k) {
  GtspInstance inst;
  int next = 0;
  for (std::size_t c = 0; c < clusters; ++c) {
    std::vector<int> cluster;
    for (std::size_t v = 0; v < k; ++v) cluster.push_back(next++);
    inst.clusters.push_back(cluster);
  }
  const int kk = static_cast<int>(k);
  inst.weight = [kk](int a, int b) {
    const int ca = a / kk, cb = b / kk;
    if (a % kk == 0 && b % kk == 0 && std::abs(ca - cb) == 1) return 10.0;
    return 0.1;
  };
  return inst;
}

TEST(Gtsp, DpIsExactForFixedOrder) {
  // Two clusters x two vertices with known weights: DP must pick the best
  // combination.
  GtspInstance inst;
  inst.clusters = {{0, 1}, {2, 3}};
  inst.weight = [](int a, int b) {
    if ((a == 1 && b == 2) || (a == 2 && b == 1)) return 7.0;
    return 1.0;
  };
  Rng rng(3);
  const GtspSolution sol = solve_gtsp_ga(inst, rng);
  EXPECT_NEAR(sol.value, 7.0, 1e-12);
  ASSERT_EQ(sol.vertex_choice.size(), 2u);
}

TEST(Gtsp, GaRecoversPlantedTour) {
  Rng rng(5);
  GtspInstance inst = planted_instance(8, 3);
  const GtspSolution sol = solve_gtsp_ga(inst, rng, {.population = 32,
                                                     .generations = 300,
                                                     .tournament = 3,
                                                     .mutation_rate = 0.4,
                                                     .stagnation_limit = 120});
  // Planted tour value: 7 consecutive edges x 10.
  EXPECT_NEAR(sol.value, 70.0, 1e-9);
}

TEST(Gtsp, GaBeatsOrMatchesRandomAndGreedy) {
  Rng rng(7);
  GtspInstance inst;
  const std::size_t m = 10, k = 4;
  int next = 0;
  for (std::size_t c = 0; c < m; ++c) {
    std::vector<int> cluster;
    for (std::size_t v = 0; v < k; ++v) cluster.push_back(next++);
    inst.clusters.push_back(cluster);
  }
  // Random symmetric weights, fixed by a hash-like formula (deterministic;
  // unsigned arithmetic so the intended wrap-around is well defined).
  inst.weight = [](int a, int b) {
    const unsigned h = static_cast<unsigned>(a) * 73856093u ^
                       static_cast<unsigned>(b) * 19349663u ^
                       static_cast<unsigned>(a + b) * 83492791u;
    return static_cast<double>(h % 1000) / 100.0;
  };
  Rng r1(11), r2(11), r3(11);
  const double ga = solve_gtsp_ga(inst, r1).value;
  const double greedy = solve_gtsp_greedy(inst, r2).value;
  const double random = solve_gtsp_random(inst, r3, 30).value;
  EXPECT_GE(ga, greedy - 1e-9);
  EXPECT_GE(ga, random - 1e-9);
}

TEST(Gtsp, SingleClusterAndEmpty) {
  GtspInstance inst;
  Rng rng(9);
  EXPECT_EQ(solve_gtsp_ga(inst, rng).cluster_order.size(), 0u);
  inst.clusters = {{4, 5, 6}};
  inst.weight = [](int, int) { return 1.0; };
  const GtspSolution sol = solve_gtsp_ga(inst, rng);
  ASSERT_EQ(sol.vertex_choice.size(), 1u);
  EXPECT_NEAR(sol.value, 0.0, 1e-12);
}

TEST(BinaryPso, SolvesOneMaxStyleProblem) {
  // Energy = Hamming distance to a planted pattern.
  Rng rng(13);
  const std::size_t dim = 24;
  std::vector<bool> pattern(dim);
  for (std::size_t i = 0; i < dim; ++i) pattern[i] = rng.bernoulli(0.5);
  const auto energy = [&pattern](const std::vector<bool>& x) {
    double d = 0;
    for (std::size_t i = 0; i < x.size(); ++i)
      if (x[i] != pattern[i]) d += 1;
    return d;
  };
  const PsoResult res = binary_pso(dim, energy, rng,
                                   {.particles = 30,
                                    .iterations = 200,
                                    .inertia = 0.72,
                                    .cognitive = 1.5,
                                    .social = 1.5,
                                    .v_clamp = 4});
  EXPECT_LE(res.best_energy, 2.0);  // near-perfect recovery
}

TEST(BinaryPso, IdentitySeedMeansNeverWorseThanZeroVector) {
  // Particle 0 starts at the all-zero vector, so the result can never be
  // worse than f(0) (mirrors seeding the Gamma search with the identity).
  Rng rng(17);
  const auto energy = [](const std::vector<bool>& x) {
    double v = 5.0;
    for (std::size_t i = 0; i < x.size(); ++i) v += x[i] ? 1.0 : 0.0;
    return v;  // zero vector is optimal
  };
  const PsoResult res = binary_pso(16, energy, rng);
  EXPECT_NEAR(res.best_energy, 5.0, 1e-12);
}

}  // namespace
}  // namespace femto::opt
